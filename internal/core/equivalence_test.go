package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/relational"
	"repro/internal/wcoj"
)

// tupleSet renders tuples (projected onto cols) as a sorted string set.
func tupleSet(tuples []relational.Tuple, cols []int) []string {
	out := make([]string, 0, len(tuples))
	seen := make(map[string]bool, len(tuples))
	for _, t := range tuples {
		key := make([]relational.Value, len(cols))
		for i, c := range cols {
			key[i] = t[c]
		}
		s := fmt.Sprint(key)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// materializeAtom enumerates an atom's tuples into a physical table, so the
// binary-join baseline can consume virtual XML relations.
func materializeAtom(t *testing.T, a wcoj.Atom) *relational.Table {
	t.Helper()
	tb := relational.NewTable(a.Name(), relational.MustSchema(a.Attrs()...))
	if _, err := wcoj.GenericJoinStream([]wcoj.Atom{a}, a.Attrs(), func(tu relational.Tuple) bool {
		if err := tb.Append(tu); err != nil {
			t.Fatal(err)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestExecutorEquivalence joins random multi-model instances — physical
// tables plus the twig's virtual Tag/Edge atoms — through all four engines:
// the streaming Generic Join, its materializing wrapper, the parallel
// executor, and the generalized Leapfrog Triejoin (the XML atoms running
// under Leapfrog-style seeking). A conventional binary hash-join plan over
// the materialized atom relations is the cross-model oracle. All five must
// produce the identical tuple set.
func TestExecutorEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 30; trial++ {
		inst, err := datagen.RandomMultiModel(rng, datagen.RandomConfig{Tables: 1 + rng.Intn(2)})
		if err != nil {
			t.Fatal(err)
		}
		q := mustQuery(t, inst)
		atoms := q.atoms(atomConfig{ad: ADPostHoc})
		order := ChooseOrder(q, OrderRelationalFirst)

		mat, err := wcoj.GenericJoin(atoms, order)
		if err != nil {
			t.Fatal(err)
		}
		var streamed []relational.Tuple
		if _, err := wcoj.GenericJoinStream(atoms, order, func(tu relational.Tuple) bool {
			streamed = append(streamed, tu.Clone())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		par, err := wcoj.GenericJoinParallel(atoms, order, 4)
		if err != nil {
			t.Fatal(err)
		}
		// The morsel driver across worker counts (1 exercises the full
		// driver/queue machinery), over the same shared atom instances —
		// including the virtual XML Tag/Edge atoms.
		for _, workers := range []int{1, 2, 8} {
			res, err := wcoj.GenericJoinParallelOpts(atoms, order, wcoj.ParallelOpts{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Tuples, mat.Tuples) {
				t.Fatalf("trial %d workers=%d: morsel output differs from serial (%d vs %d)",
					trial, workers, len(res.Tuples), len(mat.Tuples))
			}
			if res.Stats.Intersections != mat.Stats.Intersections ||
				!reflect.DeepEqual(res.Stats.StageSizes, mat.Stats.StageSizes) {
				t.Fatalf("trial %d workers=%d: morsel stats %+v vs serial %+v",
					trial, workers, res.Stats, mat.Stats)
			}
		}
		var leapfrogged []relational.Tuple
		lfStats, err := wcoj.LeapfrogJoin(atoms, order, func(tu relational.Tuple) bool {
			leapfrogged = append(leapfrogged, tu.Clone())
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if lfStats.Output != len(leapfrogged) {
			t.Fatalf("trial %d: leapfrog stats output %d vs %d", trial, lfStats.Output, len(leapfrogged))
		}

		all := make([]int, len(order))
		for i := range all {
			all[i] = i
		}
		want := tupleSet(mat.Tuples, all)
		for name, got := range map[string][]relational.Tuple{
			"stream":   streamed,
			"parallel": par.Tuples,
			"leapfrog": leapfrogged,
		} {
			if !reflect.DeepEqual(tupleSet(got, all), want) {
				t.Fatalf("trial %d twig %s: %s disagrees: %d tuples vs %d",
					trial, inst.Pattern, name, len(got), len(mat.Tuples))
			}
		}

		// Binary hash-join baseline over the materialized atom relations.
		tables := make([]*relational.Table, len(atoms))
		for i, a := range atoms {
			tables[i] = materializeAtom(t, a)
		}
		joined, _, err := wcoj.ChainHashJoin("oracle", tables)
		if err != nil {
			t.Fatal(err)
		}
		proj, err := joined.Project("oracle", order...)
		if err != nil {
			t.Fatal(err)
		}
		proj.Dedup()
		var oracle []relational.Tuple
		proj.Rows(func(tu relational.Tuple) bool {
			oracle = append(oracle, tu.Clone())
			return true
		})
		if !reflect.DeepEqual(tupleSet(oracle, all), want) {
			t.Fatalf("trial %d twig %s: binary baseline %d tuples vs wcoj %d",
				trial, inst.Pattern, len(oracle), len(mat.Tuples))
		}
	}
}

// TestMorselXJoinLimitEquivalence runs the full XJoin (validation
// included) morsel-parallel across worker counts against the serial
// oracle, with and without Limit, on random multi-model instances. An
// unlimited run must match the serial result exactly; a limited run must
// return exactly min(Limit, |answers|) tuples, each from the full answer.
func TestMorselXJoinLimitEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 15; trial++ {
		inst, err := datagen.RandomMultiModel(rng, datagen.RandomConfig{Tables: 1 + rng.Intn(2)})
		if err != nil {
			t.Fatal(err)
		}
		q := mustQuery(t, inst)
		serial, err := XJoin(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		full := make(map[string]bool, len(serial.Tuples))
		for _, tu := range serial.Tuples {
			full[fmt.Sprint(tu)] = true
		}
		for _, workers := range []int{1, 2, 8} {
			par, err := XJoin(q, Options{Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(par.Tuples, serial.Tuples) {
				t.Fatalf("trial %d workers=%d: parallel XJoin differs (%d vs %d tuples)",
					trial, workers, len(par.Tuples), len(serial.Tuples))
			}
			if par.Stats.ValidationRemoved != serial.Stats.ValidationRemoved {
				t.Fatalf("trial %d workers=%d: removed %d vs %d",
					trial, workers, par.Stats.ValidationRemoved, serial.Stats.ValidationRemoved)
			}
			for _, limit := range []int{1, 3, len(serial.Tuples) + 5} {
				lim, err := XJoin(q, Options{Parallelism: workers, Limit: limit})
				if err != nil {
					t.Fatal(err)
				}
				want := limit
				if want > len(serial.Tuples) {
					want = len(serial.Tuples)
				}
				if len(lim.Tuples) != want {
					t.Fatalf("trial %d workers=%d limit=%d: %d tuples want %d",
						trial, workers, limit, len(lim.Tuples), want)
				}
				for _, tu := range lim.Tuples {
					if !full[fmt.Sprint(tu)] {
						t.Fatalf("trial %d workers=%d limit=%d: %v not in full answer",
							trial, workers, limit, tu)
					}
				}
			}
		}
		// Streamed parallel existence: true iff the query has answers.
		found := false
		if _, err := XJoinStream(q, Options{Parallelism: 4}, func(relational.Tuple) bool {
			found = true
			return false
		}); err != nil {
			t.Fatal(err)
		}
		if found != (len(serial.Tuples) > 0) {
			t.Fatalf("trial %d: parallel exists=%v but %d answers", trial, found, len(serial.Tuples))
		}
	}
}

// TestMorselADModesEquivalence crosses every A-D handling mode with every
// interesting worker count on random multi-model instances: each mode's
// morsel-parallel run must reproduce its own serial oracle exactly —
// tuples in serial order and the executor counters that are defined to be
// scheduling-independent, LeafBatches among them. Run under -race this is
// the PR's whole-pipeline equivalence suite for the stealing scheduler.
func TestMorselADModesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(60614))
	for trial := 0; trial < 10; trial++ {
		inst, err := datagen.RandomMultiModel(rng, datagen.RandomConfig{Tables: 1 + rng.Intn(2)})
		if err != nil {
			t.Fatal(err)
		}
		q := mustQuery(t, inst)
		for _, mode := range []ADMode{ADLazy, ADPostHoc, ADMaterialized} {
			serial, err := XJoin(q, Options{AD: mode})
			if err != nil {
				t.Fatal(err)
			}
			if serial.Stats.MorselSplits != 0 || serial.Stats.MorselSteals != 0 {
				t.Fatalf("trial %d mode %s: serial run reports scheduler counters %d/%d",
					trial, mode, serial.Stats.MorselSplits, serial.Stats.MorselSteals)
			}
			for _, workers := range []int{1, 2, 8} {
				par, err := XJoin(q, Options{AD: mode, Parallelism: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(par.Tuples, serial.Tuples) {
					t.Fatalf("trial %d mode %s workers=%d: tuples differ (%d vs %d)",
						trial, mode, workers, len(par.Tuples), len(serial.Tuples))
				}
				if par.Stats.LeafBatches != serial.Stats.LeafBatches ||
					!reflect.DeepEqual(par.Stats.StageSizes, serial.Stats.StageSizes) ||
					par.Stats.ValidationRemoved != serial.Stats.ValidationRemoved {
					t.Fatalf("trial %d mode %s workers=%d: counters diverge:\nparallel %+v\nserial   %+v",
						trial, mode, workers, par.Stats, serial.Stats)
				}
			}
		}
	}
}

// TestMorselSharedXMLAtomsRace hammers the virtual XML atoms (Tag/Edge,
// the lazy structix region atoms, and the materialized AD oracle) under
// -race: several morsel-parallel XJoins run concurrently over the same
// query — sharing one set of document indexes AND one lazily built
// structural index — while a serial run streams over them too. The XML
// atoms are read-only after construction and the structix build is
// lock-guarded, so every Open must be race-free.
func TestMorselSharedXMLAtomsRace(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	inst, err := datagen.RandomMultiModel(rng, datagen.RandomConfig{NodeBudget: 150, Tables: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := mustQuery(t, inst)
	serial, err := XJoin(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	modes := []Options{
		{Parallelism: 4},                              // lazy A-D (default)
		{Parallelism: 4, AD: ADMaterialized},          // oracle atoms
		{Parallelism: 4, AD: ADPostHoc, LazyPC: true}, // lazy P-C atoms
		{Parallelism: 4, LazyPC: true, Limit: 1},      // lazy everything + limit race
		{Parallelism: 4, AD: ADLazy},                  // second lazy run over the same structix
	}
	var wg sync.WaitGroup
	for i := 0; i < len(modes); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := modes[i]
			res, err := XJoin(q, opts)
			if err != nil {
				t.Error(err)
				return
			}
			if opts.Limit == 0 && len(res.Tuples) != len(serial.Tuples) {
				t.Errorf("concurrent run %d: %d tuples want %d", i, len(res.Tuples), len(serial.Tuples))
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := XJoinStream(q, Options{}, func(relational.Tuple) bool { return true }); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
}
