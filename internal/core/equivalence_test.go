package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/datagen"
	"repro/internal/relational"
	"repro/internal/wcoj"
)

// tupleSet renders tuples (projected onto cols) as a sorted string set.
func tupleSet(tuples []relational.Tuple, cols []int) []string {
	out := make([]string, 0, len(tuples))
	seen := make(map[string]bool, len(tuples))
	for _, t := range tuples {
		key := make([]relational.Value, len(cols))
		for i, c := range cols {
			key[i] = t[c]
		}
		s := fmt.Sprint(key)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// materializeAtom enumerates an atom's tuples into a physical table, so the
// binary-join baseline can consume virtual XML relations.
func materializeAtom(t *testing.T, a wcoj.Atom) *relational.Table {
	t.Helper()
	tb := relational.NewTable(a.Name(), relational.MustSchema(a.Attrs()...))
	if _, err := wcoj.GenericJoinStream([]wcoj.Atom{a}, a.Attrs(), func(tu relational.Tuple) bool {
		if err := tb.Append(tu); err != nil {
			t.Fatal(err)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestExecutorEquivalence joins random multi-model instances — physical
// tables plus the twig's virtual Tag/Edge atoms — through all four engines:
// the streaming Generic Join, its materializing wrapper, the parallel
// executor, and the generalized Leapfrog Triejoin (the XML atoms running
// under Leapfrog-style seeking). A conventional binary hash-join plan over
// the materialized atom relations is the cross-model oracle. All five must
// produce the identical tuple set.
func TestExecutorEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 30; trial++ {
		inst, err := datagen.RandomMultiModel(rng, datagen.RandomConfig{Tables: 1 + rng.Intn(2)})
		if err != nil {
			t.Fatal(err)
		}
		q := mustQuery(t, inst)
		atoms := buildAtoms(q.twigs, q.Tables, false)
		order := ChooseOrder(q, OrderRelationalFirst)

		mat, err := wcoj.GenericJoin(atoms, order)
		if err != nil {
			t.Fatal(err)
		}
		var streamed []relational.Tuple
		if _, err := wcoj.GenericJoinStream(atoms, order, func(tu relational.Tuple) bool {
			streamed = append(streamed, tu.Clone())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		par, err := wcoj.GenericJoinParallel(atoms, order, 4)
		if err != nil {
			t.Fatal(err)
		}
		var leapfrogged []relational.Tuple
		lfStats, err := wcoj.LeapfrogJoin(atoms, order, func(tu relational.Tuple) bool {
			leapfrogged = append(leapfrogged, tu.Clone())
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if lfStats.Output != len(leapfrogged) {
			t.Fatalf("trial %d: leapfrog stats output %d vs %d", trial, lfStats.Output, len(leapfrogged))
		}

		all := make([]int, len(order))
		for i := range all {
			all[i] = i
		}
		want := tupleSet(mat.Tuples, all)
		for name, got := range map[string][]relational.Tuple{
			"stream":   streamed,
			"parallel": par.Tuples,
			"leapfrog": leapfrogged,
		} {
			if !reflect.DeepEqual(tupleSet(got, all), want) {
				t.Fatalf("trial %d twig %s: %s disagrees: %d tuples vs %d",
					trial, inst.Pattern, name, len(got), len(mat.Tuples))
			}
		}

		// Binary hash-join baseline over the materialized atom relations.
		tables := make([]*relational.Table, len(atoms))
		for i, a := range atoms {
			tables[i] = materializeAtom(t, a)
		}
		joined, _, err := wcoj.ChainHashJoin("oracle", tables)
		if err != nil {
			t.Fatal(err)
		}
		proj, err := joined.Project("oracle", order...)
		if err != nil {
			t.Fatal(err)
		}
		proj.Dedup()
		var oracle []relational.Tuple
		proj.Rows(func(tu relational.Tuple) bool {
			oracle = append(oracle, tu.Clone())
			return true
		})
		if !reflect.DeepEqual(tupleSet(oracle, all), want) {
			t.Fatalf("trial %d twig %s: binary baseline %d tuples vs wcoj %d",
				trial, inst.Pattern, len(oracle), len(mat.Tuples))
		}
	}
}
