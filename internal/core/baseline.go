package core

import (
	"fmt"

	"repro/internal/relational"
	"repro/internal/wcoj"
	"repro/internal/xmatch"
)

// Baseline evaluates the query the conventional way the paper compares
// against (Figure 3): compute the relational-only query Q1 with a binary
// hash-join plan, compute one XML-only twig query Q2 per twig with an
// optimized holistic matcher, then join all the per-model results. Each
// side is efficient for its own model, but the combination materializes up
// to |Q1| + Σ|Q2ᵢ| intermediate tuples — and a twig result alone can
// exceed the worst-case size of the full multi-model query by polynomial
// factors.
//
// Only Options.Context is honoured here (the remaining options shape the
// XJoin executors): the baseline is a materializing pipeline, so
// cancellation is checked between plan steps — before the relational Q1
// chain, before each twig match, and before each combining join — not
// inside them (in particular the whole Q1 hash-join chain runs
// uninterrupted). Cancellation latency is therefore bounded by one
// materialized step, which for the baseline can itself be polynomially
// large; that coarse bound is precisely the weakness the streaming XJoin
// path does not have.
// A cancelled run returns the statistics of the completed steps with
// Stats.Cancelled set and an error matching ErrCancelled.
func Baseline(q *Query, opts Options) (*Result, error) {
	stats := Stats{Algorithm: "baseline"}
	cancelled := func() (*Result, error) {
		cerr := Cancelled(opts.Context.Err())
		stats.Cancelled = true
		return &Result{Stats: stats}, cerr
	}
	checkCtx := func() bool {
		return opts.Context != nil && opts.Context.Err() != nil
	}
	if checkCtx() {
		return cancelled()
	}
	record := func(n int) {
		stats.StageSizes = append(stats.StageSizes, n)
		stats.TotalIntermediate += n
		if n > stats.PeakIntermediate {
			stats.PeakIntermediate = n
		}
	}

	// Q1: the relational part.
	var parts []*relational.Table
	if len(q.Tables) > 0 {
		q1, jstats, err := wcoj.ChainHashJoin("Q1", q.Tables)
		if err != nil {
			return nil, err
		}
		for _, s := range jstats.StepSizes {
			record(s)
		}
		stats.Q1Size = q1.Len()
		parts = append(parts, q1)
	}

	// Q2 per twig: matched at node level then projected to values.
	for pi, tw := range q.twigs {
		if checkCtx() {
			return cancelled()
		}
		doc := tw.ix.Doc()
		matches, mstats := xmatch.TwigStackMatch(doc, tw.pattern)
		record(mstats.PathSolutions)
		schema, err := relational.NewSchema(tw.pattern.Attrs()...)
		if err != nil {
			return nil, fmt.Errorf("core: twig attributes: %w", err)
		}
		q2 := relational.NewTable(fmt.Sprintf("Q2.%d", pi+1), schema)
		row := make(relational.Tuple, schema.Len())
		for _, m := range matches {
			for i, id := range m {
				row[i] = doc.Value(id)
			}
			if err := q2.Append(row); err != nil {
				return nil, err
			}
		}
		q2.Dedup()
		record(q2.Len())
		stats.Q2Size += q2.Len()
		parts = append(parts, q2)
	}

	// Combine the per-model results.
	combined := parts[0]
	for _, part := range parts[1:] {
		if checkCtx() {
			return cancelled()
		}
		next, err := wcoj.HashJoin("Q", combined, part)
		if err != nil {
			return nil, err
		}
		next.Dedup()
		combined = next
		record(combined.Len())
	}

	res := &Result{Attrs: combined.Schema().Attrs(), Stats: stats}
	combined.Rows(func(t relational.Tuple) bool {
		res.Tuples = append(res.Tuples, t.Clone())
		return true
	})
	res.Stats.Output = len(res.Tuples)
	return res, nil
}
