package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/relational"
)

// deepChainQuery builds the DeepChain(depth) //a//b query — the workload
// whose full enumeration is large enough (Θ(depth²/4) answers) that a
// cancelled run must visibly stop early.
func deepChainQuery(t *testing.T, depth int) *Query {
	t.Helper()
	inst, err := datagen.DeepChain(depth)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuery(inst.Doc, inst.Pattern, inst.Tables)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestCancelledBeforeStart: a context that is already over fails every
// executor before any join work, with the partial-result contract intact.
func TestCancelledBeforeStart(t *testing.T) {
	q := deepChainQuery(t, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := XJoin(q, Options{Context: ctx})
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("XJoin err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
	if res == nil || !res.Stats.Cancelled || len(res.Tuples) != 0 {
		t.Fatalf("XJoin partial result = %+v, want empty with Cancelled set", res)
	}

	stats, err := XJoinStream(q, Options{Context: ctx}, nil)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("XJoinStream err = %v, want ErrCancelled", err)
	}
	if stats == nil || !stats.Cancelled {
		t.Fatalf("XJoinStream stats = %+v, want Cancelled set", stats)
	}

	bres, err := Baseline(q, Options{Context: ctx})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("Baseline err = %v, want ErrCancelled", err)
	}
	if bres == nil || !bres.Stats.Cancelled {
		t.Fatalf("Baseline partial result = %+v, want Cancelled set", bres)
	}

	// A deadline in the past reports DeadlineExceeded through the same
	// sentinel.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer dcancel()
	if _, err := XJoin(q, Options{Context: dctx}); !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, ErrCancelled) {
		t.Fatalf("deadline err = %v, want ErrCancelled wrapping DeadlineExceeded", err)
	}
}

// TestCancelMidRunAllExecutors cancels a deep-chain full enumeration
// after its first answer, under the serial and morsel-parallel executors
// (workers 1 and 8) across all three A-D modes, and asserts the run
// reports cancellation, emits only boundedly many answers after the
// cancel, and merges the partial statistics it gathered.
func TestCancelMidRunAllExecutors(t *testing.T) {
	const depth = 400
	full := deepChainQuery(t, depth)
	fullStats, err := XJoinStream(full, Options{}, func(relational.Tuple) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	fullOutput := fullStats.Output

	for _, workers := range []int{0, 1, 8} {
		for _, ad := range []ADMode{ADLazy, ADPostHoc, ADMaterialized} {
			name := fmt.Sprintf("workers=%d/ad=%s", workers, ad)
			t.Run(name, func(t *testing.T) {
				q := deepChainQuery(t, depth)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				emitted := 0
				stats, err := XJoinStream(q, Options{Context: ctx, Parallelism: workers, AD: ad},
					func(relational.Tuple) bool {
						emitted++
						if emitted == 1 {
							cancel()
						}
						// Give the context watcher a scheduling slot so the
						// flag propagates; the executor must then stop
						// within one partial tuple per worker.
						time.Sleep(100 * time.Microsecond)
						return true
					})
				if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
				}
				if stats == nil || !stats.Cancelled {
					t.Fatalf("stats = %+v, want Cancelled set", stats)
				}
				// The sleep bounds the pre-flag window to a handful of
				// emissions; anything near the full result means the
				// cancel was ignored.
				if emitted > fullOutput/10 {
					t.Fatalf("emitted %d of %d answers after cancellation", emitted, fullOutput)
				}
				if len(stats.StageSizes) == 0 {
					t.Fatalf("partial stats lost their stage sizes: %+v", stats)
				}
			})
		}
	}
}

// TestCancelMidRunMaterializing is TestCancelMidRunAllExecutors for the
// materializing XJoin entry point: the partial result carries the
// answers validated before the cancel.
func TestCancelMidRunMaterializing(t *testing.T) {
	q := deepChainQuery(t, 400)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	res, err := XJoin(q, Options{Context: ctx})
	if err == nil {
		// The run may legitimately finish before the timer on a fast
		// machine; only the cancelled case has assertions.
		t.Skip("run completed before cancellation fired")
	}
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res == nil || !res.Stats.Cancelled {
		t.Fatalf("partial result = %+v, want Cancelled set", res)
	}
	if len(res.Tuples) != res.Stats.Output {
		t.Fatalf("partial result holds %d tuples but Stats.Output = %d", len(res.Tuples), res.Stats.Output)
	}
}

// TestCancelledColdRunKeepsCatalogConsistent cancels a cold run borrowing
// from a shared catalog mid-flight, then verifies later warm runs over
// the same catalog still produce exactly the standalone result — a
// cancelled build must never leave a poisoned entry behind.
func TestCancelledColdRunKeepsCatalogConsistent(t *testing.T) {
	inst, err := datagen.DeepChain(300)
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New(0)
	in := []TwigInput{{Doc: inst.Doc, Pattern: inst.Pattern}}

	cold, err := NewQueryInputsCatalog(in, inst.Tables, cat)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := XJoinStream(cold, Options{Context: ctx}, func(relational.Tuple) bool {
		cancel()
		time.Sleep(50 * time.Microsecond)
		return true
	}); !errors.Is(err, ErrCancelled) {
		t.Fatalf("cold run err = %v, want ErrCancelled", err)
	}

	warm, err := NewQueryInputsCatalog(in, inst.Tables, cat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := XJoin(warm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oracleQ, err := NewQueryInputs(in, inst.Tables)
	if err != nil {
		t.Fatal(err)
	}
	want, err := XJoin(oracleQ, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualResults(got, want) {
		t.Fatalf("warm run after a cancelled cold run diverged: %d tuples vs %d standalone",
			len(got.Tuples), len(want.Tuples))
	}
}

// TestCancelNoGoroutineLeak runs cancelled executions — serial and
// parallel — in a loop and checks the goroutine count settles back: the
// context watcher and every worker exit.
func TestCancelNoGoroutineLeak(t *testing.T) {
	q := deepChainQuery(t, 300)
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		for _, workers := range []int{0, 8} {
			ctx, cancel := context.WithCancel(context.Background())
			_, err := XJoinStream(q, Options{Context: ctx, Parallelism: workers}, func(relational.Tuple) bool {
				cancel()
				time.Sleep(50 * time.Microsecond)
				return true
			})
			cancel()
			if err != nil && !errors.Is(err, ErrCancelled) {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines before=%d after=%d — cancelled runs leak", before, after)
	}
}
