package core

import (
	"fmt"
	"math/big"

	"repro/internal/hypergraph"
	"repro/internal/relational"
	"repro/internal/twig"
	"repro/internal/wcoj"
)

// Bounds packages the worst-case size bounds of a multi-model query
// (Equation 1 / Lemmas 3.1-3.2), computed on the paper's transformed
// hypergraph: the relational atoms plus the twig's derived root-leaf path
// relations (Figure 2).
type Bounds struct {
	// Paper is the transformed hypergraph (tables + path relations).
	Paper *hypergraph.Hypergraph
	// Exponent is the exact uniform AGM exponent ρ* of the full query:
	// with every relation of size at most N, |Q| <= N^ρ*.
	Exponent *big.Rat
	// TwigExponent is ρ* of the twig-only subquery (the paper's Q2).
	// Nil when the query has no twig.
	TwigExponent *big.Rat
	// RelationalExponent is ρ* of the tables-only subquery (the paper's
	// Q1). Nil when the query has no tables.
	RelationalExponent *big.Rat
	// WeightedBound instantiates the bound with actual cardinalities:
	// table sizes for relational atoms, leaf-tag node counts for path
	// relations (the transformation's cardinality guarantee).
	WeightedBound float64
	// ExecBound is the weighted AGM bound of the hypergraph the executor
	// actually joins over (tables + virtual P-C edges + unary tag atoms);
	// Lemma 3.5 bounds every XJoin stage by it.
	ExecBound float64
}

// ComputeBounds derives all size bounds for q.
func ComputeBounds(q *Query) (*Bounds, error) {
	b := &Bounds{}

	paper, sizes, err := paperHypergraph(q)
	if err != nil {
		return nil, err
	}
	b.Paper = paper

	b.Exponent, err = paper.AGMExponent()
	if err != nil {
		return nil, fmt.Errorf("core: full-query exponent: %w", err)
	}
	if len(q.twigs) > 0 {
		tw := paper.SubgraphOn(func(e hypergraph.Edge) bool { return isTwigEdge(e.Name) })
		b.TwigExponent, err = tw.AGMExponent()
		if err != nil {
			return nil, fmt.Errorf("core: twig exponent: %w", err)
		}
	}
	if len(q.Tables) > 0 {
		rel := paper.SubgraphOn(func(e hypergraph.Edge) bool { return !isTwigEdge(e.Name) })
		b.RelationalExponent, err = rel.AGMExponent()
		if err != nil {
			return nil, fmt.Errorf("core: relational exponent: %w", err)
		}
	}

	b.WeightedBound, _, err = paper.AGMBound(sizes, 1)
	if err != nil {
		return nil, fmt.Errorf("core: weighted bound: %w", err)
	}

	b.ExecBound, err = execBound(q)
	if err != nil {
		return nil, fmt.Errorf("core: executor bound: %w", err)
	}
	return b, nil
}

// isTwigEdge distinguishes derived path relations — named "X[...]" for
// single-twig queries and "X<i>[...]" for multi-twig ones — from relational
// tables in the paper hypergraph. (A user table named in exactly this form
// would be misclassified in the Q1/Q2 sub-bound reporting; the full-query
// bound is unaffected.)
func isTwigEdge(name string) bool {
	if len(name) == 0 || name[0] != 'X' {
		return false
	}
	i := 1
	for i < len(name) && name[i] >= '0' && name[i] <= '9' {
		i++
	}
	return i < len(name) && name[i] == '['
}

// paperHypergraph builds the transformed hypergraph of Figure 2 and the
// actual cardinalities of its edges.
func paperHypergraph(q *Query) (*hypergraph.Hypergraph, map[string]int, error) {
	h := hypergraph.New()
	sizes := make(map[string]int)
	for _, t := range q.Tables {
		if err := h.AddEdge(t.Name(), t.Schema().Attrs()); err != nil {
			return nil, nil, err
		}
		sizes[t.Name()] = t.Len()
	}
	for pi, tw := range q.twigs {
		tr := twig.Transform(tw.pattern)
		for _, p := range tr.Paths {
			name := p.Name
			if len(q.twigs) > 1 {
				// Disambiguate identical paths from different twigs.
				name = fmt.Sprintf("X%d%s", pi+1, name[1:])
			}
			if err := h.AddEdge(name, p.Attrs()); err != nil {
				return nil, nil, err
			}
			// The transformation's size guarantee: a root-leaf P-C path has
			// at most one tuple per node of its leaf tag.
			sizes[name] = len(tw.ix.Doc().NodesByTag(p.Leaf().Tag))
		}
	}
	return h, sizes, nil
}

// StageBounds returns, for each prefix order[:i+1] of the expansion order,
// the worst-case bound on XJoin's materialized stage T_i — the per-stage
// guarantee of Lemma 3.5. The bound for a prefix P is the weighted AGM
// bound of the executor atoms restricted to P: atoms disjoint from P do not
// constrain T_i (their projection onto P is the nullary tuple), and an
// atom's projection onto P is at most its full cardinality.
func StageBounds(q *Query, order []string) ([]float64, error) {
	atoms := q.atoms(atomConfig{ad: ADPostHoc, lazyPC: true})
	sizes := atomSizes(q, atoms)
	bounds := make([]float64, len(order))
	inPrefix := make(map[string]bool, len(order))
	for i, a := range order {
		inPrefix[a] = true
		h := hypergraph.New()
		hsizes := make(map[string]int)
		for _, at := range atoms {
			var inter []string
			for _, x := range at.Attrs() {
				if inPrefix[x] {
					inter = append(inter, x)
				}
			}
			if len(inter) == 0 {
				continue
			}
			if err := h.AddEdge(at.Name(), inter); err != nil {
				return nil, err
			}
			hsizes[at.Name()] = sizes[at.Name()]
		}
		b, _, err := h.AGMBound(hsizes, 1)
		if err != nil {
			return nil, fmt.Errorf("core: stage %d bound: %w", i, err)
		}
		bounds[i] = b
	}
	return bounds, nil
}

// atomSizes maps each executor atom to its cardinality.
func atomSizes(q *Query, atoms []wcoj.Atom) map[string]int {
	sizes := make(map[string]int, len(atoms))
	byName := make(map[string]*relational.Table, len(q.Tables))
	for _, t := range q.Tables {
		byName[t.Name()] = t
	}
	for _, a := range atoms {
		if n, ok := atomSize(a); ok {
			sizes[a.Name()] = n
			continue
		}
		if t, ok := byName[a.Name()]; ok {
			sizes[a.Name()] = t.Len()
		}
	}
	return sizes
}

// execBound computes the weighted AGM bound over the executor's own atoms.
func execBound(q *Query) (float64, error) {
	h := hypergraph.New()
	atoms := q.atoms(atomConfig{ad: ADPostHoc, lazyPC: true})
	for _, a := range atoms {
		if err := h.AddEdge(a.Name(), a.Attrs()); err != nil {
			return 0, err
		}
	}
	bound, _, err := h.AGMBound(atomSizes(q, atoms), 1)
	return bound, err
}
