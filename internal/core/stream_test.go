package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/relational"
)

// TestStreamMatchesMaterialized: the streaming executor must emit exactly
// the materializing executor's tuples, in the same order, with the same
// stage accounting.
func TestStreamMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 40; trial++ {
		inst, err := datagen.RandomMultiModel(rng, datagen.RandomConfig{Tables: rng.Intn(3)})
		if err != nil {
			t.Fatal(err)
		}
		q := mustQuery(t, inst)
		mat, err := XJoin(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var streamed []relational.Tuple
		st, err := XJoinStream(q, Options{}, func(tu relational.Tuple) bool {
			streamed = append(streamed, tu.Clone())
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(streamed, mat.Tuples) && !(len(streamed) == 0 && len(mat.Tuples) == 0) {
			t.Fatalf("trial %d twig %s: stream %d tuples, materialized %d (or order differs)",
				trial, inst.Pattern, len(streamed), len(mat.Tuples))
		}
		if st.Output != mat.Stats.Output || st.ValidationRemoved != mat.Stats.ValidationRemoved {
			t.Fatalf("trial %d: stats differ: %+v vs %+v", trial, st, mat.Stats)
		}
		if !reflect.DeepEqual(st.StageSizes, mat.Stats.StageSizes) {
			// The materializing executor truncates trailing stages when one
			// empties; the stream reports zeros there instead.
			for i, s := range mat.Stats.StageSizes {
				if st.StageSizes[i] != s {
					t.Fatalf("trial %d: stage %d: %d vs %d", trial, i, st.StageSizes[i], s)
				}
			}
			for _, s := range st.StageSizes[len(mat.Stats.StageSizes):] {
				if s != 0 {
					t.Fatalf("trial %d: nonzero stage beyond materialized run", trial)
				}
			}
		}
	}
}

func TestStreamEarlyStop(t *testing.T) {
	inst, err := datagen.Example34(4)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuery(inst.Doc, inst.Pattern, nil)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	st, err := XJoinStream(q, Options{}, func(relational.Tuple) bool {
		count++
		return count < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("early stop emitted %d", count)
	}
	if st.Output != 10 {
		t.Fatalf("stats.Output = %d", st.Output)
	}
}

func TestStreamValidationCounts(t *testing.T) {
	const n = 8
	inst, err := datagen.ValidationAdversarial(n)
	if err != nil {
		t.Fatal(err)
	}
	q := mustQuery(t, inst)
	emitted := 0
	st, err := XJoinStream(q, Options{}, func(relational.Tuple) bool {
		emitted++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if emitted != n || st.ValidationRemoved != n*n-n {
		t.Fatalf("emitted %d removed %d, want %d and %d", emitted, st.ValidationRemoved, n, n*n-n)
	}
}
