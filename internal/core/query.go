package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/catalog"
	"repro/internal/relational"
	"repro/internal/twig"
	"repro/internal/wcoj"
	"repro/internal/xmldb"
	"repro/internal/xmldb/structix"
)

// TwigInput pairs one twig pattern with the XML document it matches
// against — the paper's multi-model setting spans multiple XML DBs, so
// each twig of a query may target a different document. All documents of
// one query must share one value dictionary (the Database type enforces
// this) so values are joinable across them.
type TwigInput struct {
	Doc     *xmldb.Document
	Pattern *twig.Pattern
}

// twigPart is a resolved twig input with its index sets: the value-level
// indexes (tag values, edge indexes) and the lazy region-interval
// structural index backing the lazy A-D / P-C atoms. Both are shared by
// all twigs over the same document and cached on the query, so repeated
// XJoin calls reuse whatever the structural index has already built.
type twigPart struct {
	pattern *twig.Pattern
	ix      *xmldb.Indexes
	six     *structix.Index
}

// Query is one multi-model join: any number of relational tables plus any
// number of XML twigs, each over a document — Algorithm 1's inputs are
// "XML twigs Sx, relational tables Sr". Attributes with equal names join,
// within and across models; twig tags double as attribute names (values of
// the matched elements), so a tag shared by two twigs is a join point.
//
// A query built with NewQueryInputsCatalog borrows its index structures —
// table atoms, value-level XML indexes, structural indexes — from a shared
// catalog, so repeated and concurrent queries over the same data reuse one
// set of lazily built indexes; without a catalog every structure is
// private to the query (the standalone fallback). Either way the resolved
// atom set for each execution configuration is cached on the query, so
// repeated XJoin calls (and PreparedQuery executions) perform no per-run
// atom or index construction. A Query is safe for concurrent execution.
type Query struct {
	Tables []*relational.Table
	twigs  []twigPart

	// cat is the shared index catalog, nil for standalone queries.
	cat *catalog.Catalog
	// tableAtoms are the executor atoms for Tables, borrowed from the
	// catalog or private to the query; aligned with Tables.
	tableAtoms []*wcoj.TableAtom

	// amu guards atomCache: the resolved executor atom set per
	// configuration, built once and reused by every run.
	amu       sync.Mutex
	atomCache map[atomConfig][]wcoj.Atom

	// hmu guards the hybrid planner's caches: the decomposition per
	// (configuration, plan mode), and the executor atom list with the
	// binary subplans materialized. Both are lazily initialized — queries
	// that never leave PlanWCOJ pay nothing.
	hmu             sync.Mutex
	hybridPlanCache map[hybridKey]*HybridPlan
	hybridAtomCache map[hybridKey][]wcoj.Atom
}

// NewQuery assembles a single-twig (or, with a nil pattern, pure
// relational) query; see NewQueryInputs for the general form.
func NewQuery(doc *xmldb.Document, pattern *twig.Pattern, tables []*relational.Table) (*Query, error) {
	var in []TwigInput
	if pattern != nil {
		in = []TwigInput{{Doc: doc, Pattern: pattern}}
	}
	return NewQueryInputs(in, tables)
}

// NewQueryMulti assembles a query whose twigs all match one document.
func NewQueryMulti(doc *xmldb.Document, patterns []*twig.Pattern, tables []*relational.Table) (*Query, error) {
	in := make([]TwigInput, len(patterns))
	for i, p := range patterns {
		in[i] = TwigInput{Doc: doc, Pattern: p}
	}
	return NewQueryInputs(in, tables)
}

// NewQueryInputs validates and assembles a standalone query (private index
// structures); see NewQueryInputsCatalog for the shared-catalog form.
func NewQueryInputs(twigs []TwigInput, tables []*relational.Table) (*Query, error) {
	return NewQueryInputsCatalog(twigs, tables, nil)
}

// NewQueryInputsCatalog validates and assembles a query over any number of
// (document, twig) pairs and tables. Every twig needs its document; a pure
// relational query may pass no twigs. Every table must have a unique name.
// Tags are unique within one twig but may repeat across twigs (they then
// join by value).
//
// With a non-nil cat the query borrows every index structure from it:
// table atoms, value-level XML indexes and structural indexes are shared
// process-wide and subject to the catalog's byte budget. With nil cat the
// query builds private structures, reused across its own executions only.
func NewQueryInputsCatalog(twigs []TwigInput, tables []*relational.Table, cat *catalog.Catalog) (*Query, error) {
	if len(twigs) == 0 && len(tables) == 0 {
		return nil, fmt.Errorf("core: query with no tables and no twig")
	}
	names := make(map[string]bool, len(tables))
	for _, t := range tables {
		if names[t.Name()] {
			return nil, fmt.Errorf("core: duplicate table name %q", t.Name())
		}
		names[t.Name()] = true
	}
	q := &Query{Tables: tables, cat: cat, atomCache: make(map[atomConfig][]wcoj.Atom)}
	for _, t := range tables {
		if cat != nil {
			q.tableAtoms = append(q.tableAtoms, cat.TableAtom(t))
		} else {
			q.tableAtoms = append(q.tableAtoms, wcoj.NewTableAtom(t))
		}
	}
	ixCache := make(map[*xmldb.Document]*xmldb.Indexes)
	sixCache := make(map[*xmldb.Document]*structix.Index)
	for i, in := range twigs {
		if in.Pattern == nil {
			return nil, fmt.Errorf("core: twig input %d has no pattern", i)
		}
		if in.Doc == nil {
			return nil, fmt.Errorf("core: twig %s given without an XML document", in.Pattern)
		}
		ix, ok := ixCache[in.Doc]
		if !ok {
			var err error
			if ix, err = buildIndexes(cat, in.Doc); err != nil {
				return nil, err
			}
			ixCache[in.Doc] = ix
		}
		six, ok := sixCache[in.Doc]
		if !ok {
			if cat != nil {
				six = cat.StructIndex(in.Doc)
			} else {
				six = structix.New(in.Doc)
			}
			sixCache[in.Doc] = six
		}
		q.twigs = append(q.twigs, twigPart{pattern: in.Pattern, ix: ix, six: six})
	}
	return q, nil
}

// buildIndexes resolves the value-level indexes for doc — from the shared
// catalog, or privately for standalone queries. The eager per-tag build is
// an isolation boundary: a panic inside it (a corrupt document, an
// injected fault) is recovered into an error matching ErrInternal, and the
// catalog's retryable build slot stays clean for the next caller.
func buildIndexes(cat *catalog.Catalog, doc *xmldb.Document) (ix *xmldb.Indexes, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = Internal(fmt.Errorf("index build panic: %v", v))
		}
	}()
	if cat != nil {
		return cat.Indexes(doc), nil
	}
	return xmldb.NewIndexes(doc), nil
}

// atoms returns (building and caching on first use) the executor atom set
// for one configuration. The cache makes repeated executions — and every
// PreparedQuery.Execute — free of atom construction; the atoms themselves
// are safe for concurrent executors.
func (q *Query) atoms(cfg atomConfig) []wcoj.Atom {
	q.amu.Lock()
	defer q.amu.Unlock()
	if as, ok := q.atomCache[cfg]; ok {
		return as
	}
	as := buildAtoms(q, cfg)
	q.atomCache[cfg] = as
	return as
}

// addCatalogStats snapshots the shared catalog's cumulative counters into
// the run statistics (zero values for standalone queries). The counters
// are process-wide and monotone — "this run built nothing" reads as
// "CatalogMisses unchanged since the previous run".
func (q *Query) addCatalogStats(s *Stats) {
	if q.cat == nil {
		return
	}
	cs := q.cat.Stats()
	s.CatalogHits = cs.Hits
	s.CatalogMisses = cs.Misses
	s.CatalogEvictions = cs.Evictions
	s.CatalogResidentBytes = cs.ResidentBytes
	s.CatalogEntries = cs.Entries
}

// hasADEdge reports whether any twig has a cut (descendant-axis) edge.
func (q *Query) hasADEdge() bool {
	for _, tw := range q.twigs {
		for _, n := range tw.pattern.Nodes() {
			if n.Parent != nil && n.Axis == twig.Descendant {
				return true
			}
		}
	}
	return false
}

// adModeLabel reports the effective A-D handling for the statistics —
// empty when the query has no cut A-D edge, so mode noise never appears on
// purely P-C queries.
func (q *Query) adModeLabel(opts Options) string {
	if !q.hasADEdge() {
		return ""
	}
	return opts.adMode().String()
}

// Patterns returns the query's twig patterns in input order.
func (q *Query) Patterns() []*twig.Pattern {
	out := make([]*twig.Pattern, len(q.twigs))
	for i, tw := range q.twigs {
		out[i] = tw.pattern
	}
	return out
}

// Pattern returns the query's single twig, or nil. It is a convenience for
// the common single-twig case; multi-twig queries use Patterns.
func (q *Query) Pattern() *twig.Pattern {
	if len(q.twigs) == 1 {
		return q.twigs[0].pattern
	}
	return nil
}

// Attrs returns the query's output attributes: table attributes in schema
// order, then twig tags in preorder, each listed once.
func (q *Query) Attrs() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(a string) {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, t := range q.Tables {
		for _, a := range t.Schema().Attrs() {
			add(a)
		}
	}
	for _, tw := range q.twigs {
		for _, a := range tw.pattern.Attrs() {
			add(a)
		}
	}
	return out
}

// SharedAttrs returns the attributes appearing in both a table and the
// twig — the cross-model join points — sorted.
func (q *Query) SharedAttrs() []string {
	if len(q.twigs) == 0 {
		return nil
	}
	inTwig := make(map[string]bool)
	for _, tw := range q.twigs {
		for _, a := range tw.pattern.Attrs() {
			inTwig[a] = true
		}
	}
	seen := make(map[string]bool)
	var out []string
	for _, t := range q.Tables {
		for _, a := range t.Schema().Attrs() {
			if inTwig[a] && !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Result is a materialized multi-model join answer.
type Result struct {
	// Attrs names the tuple positions.
	Attrs []string
	// Tuples holds the answers with set semantics.
	Tuples []relational.Tuple
	// Stats describes the run that produced the result.
	Stats Stats
}

// Stats quantifies a join run; the Figure 3 experiment compares these
// between XJoin and the baseline.
type Stats struct {
	// Algorithm is "xjoin", "xjoin+" or "baseline".
	Algorithm string
	// Order is the attribute expansion priority PA used (XJoin only).
	Order []string
	// StageSizes are the materialized sizes after each expansion stage
	// (XJoin) or each plan step (baseline).
	StageSizes []int
	// PeakIntermediate is the largest materialized collection at any point.
	PeakIntermediate int
	// TotalIntermediate sums all materialized stage sizes.
	TotalIntermediate int
	// Output is the final answer count.
	Output int
	// ValidationRemoved counts tuples discarded by the final structural
	// validation (XJoin) or never formed (baseline: always 0).
	ValidationRemoved int
	// Cancelled marks a run abandoned because its Options.Context ended
	// (cancellation or deadline): the other fields then describe the
	// completed portion only — partial per-worker statistics still merge —
	// and the run's error matches ErrCancelled. Always false for runs
	// that finished, including ones stopped early by Limit or an emit
	// callback.
	Cancelled bool
	// Internal marks a run aborted by a recovered engine panic: the other
	// fields describe the completed portion and the run's error matches
	// ErrInternal (wrapping the *wcoj.PanicError with the captured stack).
	// The process, the query and the shared catalog stay usable.
	Internal bool
	// Degraded, when non-empty, records why this run fell back from its
	// requested lazy configuration to the post-hoc shape: a lazily built
	// structural index alone exceeded the catalog's byte budget (the text
	// is the admission error). The run's results are identical to the
	// requested configuration's — only the execution strategy changed —
	// and ADMode reports the mode actually run ("posthoc").
	Degraded string
	// Plan records the executor strategy mix when the run used a
	// non-default plan mode: "hybrid" (GYO core on the generic join,
	// cost-accepted acyclic fringe on binary hash joins) or "binary"
	// (every component forced through hash-join chains). Empty for pure
	// generic-join runs, so plan noise never appears on ordinary output.
	Plan string
	// BinarySubplans counts the materialized binary subplans that fed the
	// run's top-level generic join (hybrid/binary plan modes; 0 otherwise).
	BinarySubplans int
	// BinaryIntermediate sums the tuples the binary subplans materialized
	// across their chain steps — the conventional-side counterpart of
	// TotalIntermediate, what the hybrid plan pays up front to make the
	// acyclic fringe cheap.
	BinaryIntermediate int
	// Q1Size and Q2Size are the baseline's per-model result sizes.
	Q1Size, Q2Size int
	// LeafBatches counts the key vectors the batched leaf-level loop
	// delivered (XJoin only). Every leaf value arrives in exactly one
	// batch, so completed runs report the same count regardless of
	// executor or worker count.
	LeafBatches int
	// MorselSplits and MorselSteals describe the parallel scheduler's
	// response to skew: sub-morsels re-queued by splitting a running
	// task's remaining work, and tasks claimed from another worker's
	// deque. Both are zero for serial runs and scheduling-dependent
	// otherwise — they say nothing about the result, only about how the
	// work moved between workers.
	MorselSplits int
	MorselSteals int
	// DeadlineStops counts morsels the parallel scheduler refused to
	// start because the context deadline's remaining budget could not
	// cover one more (estimated from a running per-morsel EWMA of task
	// wall time). Nonzero exactly when the deadline gate pre-empted the
	// run at a morsel boundary — such runs also report Cancelled and
	// return their partial answer; 0 for serial runs, runs without a
	// deadline, and runs that beat their deadline.
	DeadlineStops int
	// TableIndexes and TableIndexBytes report the sorted-column indexes
	// the run's table atoms held after execution: shape count and
	// approximate heap bytes. Table atoms build these lazily per
	// (target, bound-set) shape and cache them for the atom's lifetime,
	// so long-lived serving processes should watch these counters (and
	// use wcoj.TableAtom's DropIndexes/Precompute to control them).
	TableIndexes    int
	TableIndexBytes int64
	// ADMode records how cut A-D twig edges participated in the join:
	// "lazy" (structix region atoms, the default), "materialized" (the
	// quadratic oracle ADAtom) or "posthoc" (validation only). Empty for
	// queries without A-D edges and for the baseline.
	ADMode string
	// StructIndexes and StructIndexBytes mirror TableIndexes for the
	// region-interval structural indexes behind the lazy A-D / P-C atoms:
	// the number of built per-tag runs plus cached edge projections, and
	// their approximate heap bytes — O(document), never a pair set.
	StructIndexes    int
	StructIndexBytes int64
	// CatalogHits..CatalogEntries snapshot the shared index catalog at the
	// end of the run, when the query borrows from one (all zero for
	// standalone queries). Hits/Misses/Evictions are cumulative
	// process-wide counters, not per-run deltas: a warm execution that
	// performed zero index-build work leaves CatalogMisses exactly where
	// the previous run's snapshot put it. ResidentBytes/Entries describe
	// the catalog's lazily built entries currently resident against its
	// byte budget.
	CatalogHits          int64
	CatalogMisses        int64
	CatalogEvictions     int64
	CatalogResidentBytes int64
	CatalogEntries       int
}

// project returns the positions of attrs within from, erroring on misses.
func project(from []string, attrs []string) ([]int, error) {
	pos := make(map[string]int, len(from))
	for i, a := range from {
		pos[a] = i
	}
	out := make([]int, len(attrs))
	for i, a := range attrs {
		p, ok := pos[a]
		if !ok {
			return nil, fmt.Errorf("core: attribute %q not in result", a)
		}
		out[i] = p
	}
	return out, nil
}

// Project reorders/projects the result onto attrs, deduplicating.
func (r *Result) Project(attrs []string) (*Result, error) {
	cols, err := project(r.Attrs, attrs)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(r.Tuples))
	out := &Result{Attrs: append([]string(nil), attrs...), Stats: r.Stats}
	var key []byte
	for _, t := range r.Tuples {
		nt := make(relational.Tuple, len(cols))
		key = key[:0]
		for i, c := range cols {
			nt[i] = t[c]
			v := uint64(t[c])
			key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), byte(v>>32))
		}
		if seen[string(key)] {
			continue
		}
		seen[string(key)] = true
		out.Tuples = append(out.Tuples, nt)
	}
	return out, nil
}

// Table materializes the result as a relational table named name.
func (r *Result) Table(name string) (*relational.Table, error) {
	schema, err := relational.NewSchema(r.Attrs...)
	if err != nil {
		return nil, err
	}
	t := relational.NewTable(name, schema)
	for _, tu := range r.Tuples {
		if err := t.Append(tu); err != nil {
			return nil, err
		}
	}
	return t, nil
}
