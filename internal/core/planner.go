package core

import (
	"repro/internal/hypergraph"
	"repro/internal/wcoj"
)

// MinBoundOrder chooses the attribute priority PA by greedily minimizing
// the per-stage worst-case bound: at each step it appends the remaining
// attribute whose extended prefix has the smallest weighted AGM bound over
// the executor atoms (ties broken by first-appearance order). This spends
// O(k²) small LPs at planning time to keep every T_i's *guarantee* low —
// the bound-driven refinement of Lemma 3.5.
//
// The LPs run over the lazy atom set including the region A-D atoms, which
// now report a cardinality bound (exact-projection product when the
// structural index has it resident, tag-count product otherwise — see
// RegionADAtom.Size), so A-D-heavy twigs inform the order instead of being
// invisible. More edges can only lower an AGM bound. Planning never
// materializes a pair set: A-D sizes are residency-safe (ADProjSizes), and
// the only structures it may build are the O(tag) P-C edge projections
// behind RegionPCAtom.Size — shared through the query's structural index
// (or the catalog) with the execution that needs them anyway.
func MinBoundOrder(q *Query) ([]string, error) {
	attrs := q.Attrs()
	atoms := q.atoms(atomConfig{ad: ADLazy, lazyPC: true})
	sizes := atomSizes(q, atoms)

	chosen := make([]string, 0, len(attrs))
	inPrefix := make(map[string]bool, len(attrs))
	remaining := append([]string(nil), attrs...)
	for len(remaining) > 0 {
		bestIdx := -1
		var bestBound float64
		for i, cand := range remaining {
			inPrefix[cand] = true
			b, err := prefixBound(atoms, sizes, inPrefix)
			inPrefix[cand] = false
			if err != nil {
				return nil, err
			}
			if bestIdx < 0 || b < bestBound {
				bestIdx, bestBound = i, b
			}
		}
		pick := remaining[bestIdx]
		chosen = append(chosen, pick)
		inPrefix[pick] = true
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return chosen, nil
}

// prefixBound is the weighted AGM bound of the atoms restricted to the
// prefix (the same quantity StageBounds computes per stage).
func prefixBound(atoms []wcoj.Atom, sizes map[string]int, inPrefix map[string]bool) (float64, error) {
	h := hypergraph.New()
	hsizes := make(map[string]int)
	any := false
	for _, at := range atoms {
		var inter []string
		for _, x := range at.Attrs() {
			if inPrefix[x] {
				inter = append(inter, x)
			}
		}
		if len(inter) == 0 {
			continue
		}
		if err := h.AddEdge(at.Name(), inter); err != nil {
			return 0, err
		}
		hsizes[at.Name()] = sizes[at.Name()]
		any = true
	}
	if !any {
		return 0, nil
	}
	b, _, err := h.AGMBound(hsizes, 1)
	return b, err
}
