package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cachehook"
	"repro/internal/obs"
	"repro/internal/relational"
	"repro/internal/wcoj"
	"repro/internal/xmldb/structix"
)

// OrderStrategy selects how the attribute expansion priority PA (Algorithm
// 1's input) is chosen when the caller does not supply one explicitly.
type OrderStrategy int

const (
	// OrderRelationalFirst expands the relational tables' attributes first
	// (schema order), then the remaining twig tags in preorder. Relational
	// atoms are usually the most selective, so this is the default.
	OrderRelationalFirst OrderStrategy = iota
	// OrderDocument expands attributes in first-appearance order: tables in
	// declaration order, then twig preorder.
	OrderDocument
	// OrderGreedy expands attributes by increasing candidate-set size
	// (the minimum distinct-value count over the atoms containing them),
	// a static selectivity heuristic.
	OrderGreedy
	// OrderMinBound greedily minimizes the per-stage AGM bound (one small
	// LP per candidate extension); see MinBoundOrder.
	OrderMinBound
)

// ADMode selects how the twig's cut ancestor-descendant edges participate
// in the join.
type ADMode int

const (
	// ADDefault resolves to ADLazy: partial A-D filtering is the default
	// execution mode now that the region-interval structural index
	// (internal/xmldb/structix) makes the A-D atoms free to build —
	// O(n) memory, lazy stab-query cursors, no pair materialization.
	ADDefault ADMode = iota
	// ADLazy filters intermediate results through structix.RegionADAtom.
	ADLazy
	// ADPostHoc is the paper's plain Algorithm 1: A-D edges are enforced
	// only by the final structural validation.
	ADPostHoc
	// ADMaterialized filters through the original core.ADAtom, which
	// materializes the full value-level A-D relation up front — quadratic
	// in the worst case. Kept as the oracle the lazy path is tested and
	// benchmarked against.
	ADMaterialized
)

// String names the mode for statistics output.
func (m ADMode) String() string {
	switch m {
	case ADLazy:
		return "lazy"
	case ADPostHoc:
		return "posthoc"
	case ADMaterialized:
		return "materialized"
	default:
		return "lazy" // ADDefault resolves to lazy
	}
}

// Options tunes an XJoin run.
type Options struct {
	// Context, when non-nil, bounds the run: cancelling it (or its
	// deadline expiring) stops every executor — serial or morsel-parallel
	// — within one morsel's work regardless of result size, the run
	// returns an error matching ErrCancelled and the context's own error,
	// and the partial result/statistics gathered so far come back with
	// Stats.Cancelled set. A nil Context (or one that can never be
	// cancelled, like context.Background) takes the exact pre-context
	// fast path: no watcher goroutine, no flag, no allocation.
	//
	// Options travels by value through one execution, so carrying the
	// context here is the usual per-call plumbing, not a stored context.
	Context context.Context
	// Order is the explicit attribute priority PA; when nil, Strategy
	// picks one.
	Order []string
	// Strategy selects the automatic ordering (default OrderRelationalFirst).
	Strategy OrderStrategy
	// AD selects how cut A-D twig edges are handled; the zero value
	// resolves to ADLazy, so the paper's future-work extension ("filtering
	// infeasible intermediate results ... during the joining") is on by
	// default. Use ADPostHoc for the paper's plain Algorithm 1 and
	// ADMaterialized for the quadratic oracle index.
	AD ADMode
	// PartialAD is the pre-ADMode switch for the same extension, kept for
	// compatibility: setting it requests in-join A-D filtering (now lazy).
	// It only affects the Stats.Algorithm label — filtering is already the
	// default — and is overridden by an explicit AD mode.
	PartialAD bool
	// LazyPC swaps the materialized value-level edge indexes behind the
	// P-C atoms for structix's lazy region atoms: per-binding child/parent
	// hops instead of an up-front O(child-count) index build. Results are
	// identical; prefer it when documents are large and queries selective.
	LazyPC bool
	// SkipValidation disables the final structural validation; only safe
	// for queries whose twig has no A-D edges and no branching (tests use
	// it to demonstrate why validation is needed).
	SkipValidation bool
	// Parallelism runs the join morsel-driven over this many workers:
	// 0 or 1 runs serially, negative uses GOMAXPROCS. Workers stream the
	// depth-first executor over partitions of the first attribute's
	// cursor range and validate answers as they appear, so no stage is
	// ever materialized. An unlimited parallel XJoin reproduces the
	// serial output and statistics exactly.
	Parallelism int
	// Limit, when positive, stops the join after that many validated
	// answers — early termination (existence checks are Limit=1). It
	// composes with Parallelism: workers claim emission slots from a
	// shared atomic counter and every worker short-circuits once the
	// limit is reached, so a limited parallel run returns exactly
	// min(Limit, |answers|) tuples (a scheduling-dependent subset of the
	// full answer) without enumerating the rest.
	Limit int
	// Trace, when non-nil, collects the run's timed span tree — plan/order
	// selection, execution, every lazy index build, and per-level join
	// counters — for EXPLAIN ANALYZE. The nil fast path costs one pointer
	// test per phase (never per tuple): the per-level counters ride the
	// statistics the executors gather anyway.
	Trace *obs.Trace
	// Plan selects the executor strategy mix: PlanWCOJ (the zero value)
	// runs the pure generic join, PlanHybrid materializes the cost-accepted
	// acyclic fringe with binary hash joins and keeps the GYO cyclic core
	// on the generic join, PlanBinary forces every component through hash
	// joins. All modes produce identical results; see PlanMode.
	Plan PlanMode
}

// adMode resolves the effective A-D handling (ADDefault becomes ADLazy;
// PartialAD requests the same lazy filtering the default already runs).
func (o Options) adMode() ADMode {
	switch o.AD {
	case ADLazy, ADPostHoc, ADMaterialized:
		return o.AD
	}
	return ADLazy
}

// atomConfig derives the executor atom-set configuration.
func (o Options) atomConfig() atomConfig {
	return atomConfig{ad: o.adMode(), lazyPC: o.LazyPC}
}

// algoLabel names the run for Stats.Algorithm. In-join A-D filtering is on
// by default, so the label distinguishes what the caller *asked for*:
// "xjoin+" only for an explicit filtering request (PartialAD or a non-
// default AD mode other than ADPostHoc); default runs keep the historical
// "xjoin" label and report the effective mode in Stats.ADMode instead.
// Non-default plan modes get their own labels, so the per-algorithm query
// metrics separate hybrid and forced-binary runs.
func (o Options) algoLabel() string {
	switch o.Plan {
	case PlanHybrid:
		return "xjoin-hybrid"
	case PlanBinary:
		return "xjoin-binary"
	}
	if o.adMode() == ADPostHoc {
		return "xjoin"
	}
	if o.PartialAD || o.AD != ADDefault {
		return "xjoin+"
	}
	return "xjoin"
}

// XJoin evaluates the query with Algorithm 1: a worst-case optimal
// attribute-at-a-time expansion over all atoms of both models, followed by
// structural validation of the twig on the candidate answers.
//
// Failure semantics: a run aborted by its context returns the partial
// result with an error matching ErrCancelled; a run aborted by a
// recovered engine panic returns the partial result with an error
// matching ErrInternal; a lazily built index refused by the catalog
// budget transparently reruns in the degraded post-hoc configuration
// (Stats.Degraded records why), so ErrBudgetExceeded only surfaces when
// no cheaper shape exists.
func XJoin(q *Query, opts Options) (*Result, error) {
	algo := opts.algoLabel()
	res, err := xjoinRun(q, opts, algo, "")
	if dopts, reason, ok := degradeOptions(q, opts, err); ok {
		return xjoinRun(q, dopts, algo, reason)
	}
	return res, err
}

// xjoinRun is one XJoin attempt under a fixed configuration; degraded
// carries the budget-fallback reason into the run's statistics (empty for
// a first attempt).
func xjoinRun(q *Query, opts Options, algo, degraded string) (*Result, error) {
	guard, gerr := newCancelGuard(opts.Context)
	if gerr != nil {
		// Already over before any join work: an empty partial result
		// carrying the Cancelled marker, alongside the error.
		return &Result{Stats: Stats{Algorithm: algo, ADMode: q.adModeLabel(opts), Cancelled: true, Degraded: degraded}}, gerr
	}
	defer guard.stop()
	tr := opts.Trace
	var plan *obs.Span
	if tr != nil {
		plan = tr.Start("plan")
	}
	atoms := q.atoms(opts.atomConfig())
	if len(atoms) == 0 {
		return nil, fmt.Errorf("core: query has no atoms")
	}
	order := opts.Order
	if order == nil {
		var err error
		order, err = chooseOrderErr(q, opts.Strategy)
		if err != nil {
			return nil, err
		}
	}
	if err := checkOrder(q, order); err != nil {
		return nil, err
	}
	bctl := q.buildControl(opts)
	if opts.Plan != PlanWCOJ {
		// Swap in the hybrid plan's atom list: the generic join below runs
		// unchanged over [retained atoms + materialized binary subplans],
		// with the same full attribute order.
		var herr error
		atoms, _, herr = q.hybridAtoms(opts, guard, bctl, plan)
		if herr != nil {
			plan.End()
			return nil, herr
		}
	}
	if tr != nil {
		plan.SetInt("atoms", int64(len(atoms)))
		plan.SetStr("order", strings.Join(order, " "))
		if opts.Plan != PlanWCOJ {
			plan.SetStr("plan_mode", opts.Plan.String())
		}
		plan.End()
	}

	if opts.Parallelism < 0 || opts.Parallelism > 1 {
		return xjoinParallel(q, opts, atoms, order, algo, degraded, guard, bctl)
	}

	// Serial path: stream candidate tuples out of the iterator-based
	// executor and apply Algorithm 1's final filter ("Filter R by
	// validating structure of Sx") per tuple, so no unvalidated stage is
	// ever materialized and Limit can stop the join early.
	var validators []*validator
	if len(q.twigs) > 0 && !opts.SkipValidation {
		validators = make([]*validator, len(q.twigs))
		for i, tw := range q.twigs {
			validators[i] = newValidator(tw.ix, tw.pattern, order)
		}
	}
	res := &Result{Stats: Stats{Algorithm: algo, ADMode: q.adModeLabel(opts), Degraded: degraded, Plan: opts.planLabel()}}
	exec := traceExecStart(tr, &bctl, 1, degraded)
	gjStats, err := wcoj.GenericJoinStreamOpts(atoms, order, wcoj.StreamOpts{Cancel: guard.cancelFlag(), Check: guard.checkFunc(), Build: bctl}, func(t relational.Tuple) bool {
		for _, v := range validators {
			if !v.hasWitness(t) {
				res.Stats.ValidationRemoved++
				return true
			}
		}
		res.Tuples = append(res.Tuples, t.Clone())
		return opts.Limit <= 0 || len(res.Tuples) < opts.Limit
	})
	exec.End()
	if err != nil {
		if isPanic(err) {
			// The panic was isolated at the executor boundary; the tuples
			// validated before it are a correct partial answer.
			res.Attrs = order
			res.Stats.Internal = true
			res.Stats.Output = len(res.Tuples)
			return res, Internal(err)
		}
		return nil, err
	}
	res.Attrs = gjStats.Order
	res.Stats.Order = gjStats.Order
	res.Stats.StageSizes = gjStats.StageSizes
	res.Stats.PeakIntermediate = gjStats.PeakIntermediate
	res.Stats.LeafBatches = gjStats.Batches
	res.Stats.Output = len(res.Tuples)
	for _, s := range gjStats.StageSizes {
		res.Stats.TotalIntermediate += s
	}
	addIndexStats(atoms, &res.Stats)
	q.addCatalogStats(&res.Stats)
	traceExecStats(exec, gjStats, &res.Stats)
	if cerr := guard.err(); cerr != nil {
		res.Stats.Cancelled = true
		return res, cerr
	}
	return res, nil
}

// xjoinParallel is XJoin over the morsel-driven parallel executor: each
// worker streams the depth-first expansion over its morsels of
// first-attribute keys and applies the structural validation per tuple, so
// — unlike the former breadth-first path — no unvalidated stage is ever
// materialized and Limit terminates all workers early through a shared
// atomic counter. Validated tuples are collected per morsel and
// reassembled in morsel order, which for an unlimited run is exactly the
// serial executor's output sequence.
func xjoinParallel(q *Query, opts Options, atoms []wcoj.Atom, order []string, algo, degraded string, guard *cancelGuard, bctl cachehook.BuildControl) (*Result, error) {
	pworkers := opts.Parallelism
	if pworkers < 0 {
		pworkers = 0
	}
	workers := wcoj.ResolveWorkers(pworkers)
	// Validators are shared across workers: hasWitness keeps no state
	// between calls and only reads the immutable document indexes.
	var validators []*validator
	if len(q.twigs) > 0 && !opts.SkipValidation {
		validators = make([]*validator, len(q.twigs))
		for i, tw := range q.twigs {
			validators[i] = newValidator(tw.ix, tw.pattern, order)
		}
	}
	col := wcoj.NewMorselCollector(workers)
	removed := make([]int, workers)
	var accepted atomic.Int64
	limit := int64(opts.Limit)
	exec := traceExecStart(opts.Trace, &bctl, workers, degraded)
	gjStats, err := wcoj.GenericJoinParallelMorsels(atoms, order, wcoj.ParallelOpts{Workers: workers, Cancel: guard.cancelFlag(), Check: guard.checkFunc(), Build: bctl, Deadline: contextDeadline(opts.Context)},
		func(w int) func(wcoj.OrdKey, relational.Tuple) bool {
			return func(ord wcoj.OrdKey, t relational.Tuple) bool {
				for _, v := range validators {
					if !v.hasWitness(t) {
						removed[w]++
						return true
					}
				}
				if limit > 0 {
					// Claim a slot; over-claims are discarded so exactly
					// min(Limit, |answers|) validated tuples survive.
					n := accepted.Add(1)
					if n > limit {
						return false
					}
					col.Add(w, ord, t)
					return n < limit
				}
				col.Add(w, ord, t)
				return true
			}
		})
	exec.End()
	if err != nil {
		if isPanic(err) {
			// All workers have joined, so the collector is quiescent; the
			// tuples validated before the failure are a correct partial
			// answer.
			res := &Result{Attrs: order, Tuples: col.Tuples(), Stats: Stats{
				Algorithm: algo, ADMode: q.adModeLabel(opts), Degraded: degraded, Internal: true,
			}}
			res.Stats.Output = len(res.Tuples)
			return res, Internal(err)
		}
		return nil, err
	}
	res := &Result{Attrs: gjStats.Order, Tuples: col.Tuples(), Stats: Stats{
		Algorithm:        algo,
		ADMode:           q.adModeLabel(opts),
		Degraded:         degraded,
		Plan:             opts.planLabel(),
		Order:            gjStats.Order,
		StageSizes:       gjStats.StageSizes,
		PeakIntermediate: gjStats.PeakIntermediate,
		LeafBatches:      gjStats.Batches,
		MorselSplits:     gjStats.Splits,
		MorselSteals:     gjStats.Steals,
		DeadlineStops:    gjStats.DeadlineStops,
	}}
	for _, r := range removed {
		res.Stats.ValidationRemoved += r
	}
	for _, s := range gjStats.StageSizes {
		res.Stats.TotalIntermediate += s
	}
	res.Stats.Output = len(res.Tuples)
	addIndexStats(atoms, &res.Stats)
	q.addCatalogStats(&res.Stats)
	traceExecStats(exec, gjStats, &res.Stats)
	if cerr := guard.err(); cerr != nil {
		res.Stats.Cancelled = true
		return res, cerr
	}
	if gjStats.DeadlineStops > 0 {
		// The deadline gate pre-empted the run at a morsel boundary,
		// possibly before the deadline itself passed (the EWMA said one
		// more morsel would not fit). Report the cancellation it is: the
		// partial answer rides along, as with any cancelled run.
		res.Stats.Cancelled = true
		return res, Cancelled(context.DeadlineExceeded)
	}
	return res, nil
}

// contextDeadline extracts a context's deadline for the parallel
// scheduler's gate (zero when absent — no gating).
func contextDeadline(ctx context.Context) time.Time {
	if ctx == nil {
		return time.Time{}
	}
	d, _ := ctx.Deadline()
	return d
}

// addIndexStats folds the table atoms' index observability counters and
// the structural (region-interval) indexes behind any structix atoms into
// the run's statistics. Several atoms of one document share one
// structix.Index, so indexes are deduplicated by identity before summing.
func addIndexStats(atoms []wcoj.Atom, stats *Stats) {
	six := make(map[*structix.Index]bool)
	for _, a := range atoms {
		switch at := unwrapAtom(a).(type) {
		case *wcoj.MaterializedAtom:
			// A binary subplan's intermediate: its chain counters feed the
			// binary-side statistics, and the wrapped table's sorted-column
			// indexes count like any other table atom's.
			stats.BinarySubplans++
			stats.BinaryIntermediate += at.BinaryStats().TotalIntermediate
			info := at.IndexInfo()
			stats.TableIndexes += info.Indexes
			stats.TableIndexBytes += info.ApproxBytes
		case *wcoj.TableAtom:
			info := at.IndexInfo()
			stats.TableIndexes += info.Indexes
			stats.TableIndexBytes += info.ApproxBytes
		case *structix.RegionADAtom:
			six[at.Index()] = true
		case *structix.RegionPCAtom:
			six[at.Index()] = true
		}
	}
	for ix := range six {
		info := ix.Info()
		stats.StructIndexes += info.TagRuns + info.EdgeProjections
		stats.StructIndexBytes += info.ApproxBytes
	}
}

// Prepare freezes an execution plan for q under opts and returns the
// frozen options: the attribute priority is resolved once (strategy errors
// and invalid explicit orders surface here, not at execution), and the
// executor atom set for the chosen configuration is resolved into the
// query's cache so the first Execute pays no plan or atom work. The
// returned options are safe to reuse — by value — for any number of
// concurrent XJoin/XJoinStream calls over q; index builds stay lazy and
// are shared through the query's (or its catalog's) structures.
//
// A pre-cancelled Options.Context fails fast with an error matching
// ErrCancelled before any plan or atom work.
func Prepare(q *Query, opts Options) (Options, error) {
	if ctx := opts.Context; ctx != nil {
		if err := ctx.Err(); err != nil {
			return opts, Cancelled(err)
		}
	}
	if opts.Order == nil {
		order, err := chooseOrderErr(q, opts.Strategy)
		if err != nil {
			return opts, err
		}
		opts.Order = order
	}
	if err := checkOrder(q, opts.Order); err != nil {
		return opts, err
	}
	q.atoms(opts.atomConfig())
	if opts.Plan != PlanWCOJ {
		// Resolve the decomposition now (planning errors surface here);
		// subplan materialization stays lazy and is cached by the first
		// execution.
		if _, err := q.hybridPlan(opts.atomConfig(), opts.Plan); err != nil {
			return opts, err
		}
	}
	return opts, nil
}

// ChooseOrder computes the attribute priority PA for the given strategy.
// For OrderMinBound use MinBoundOrder directly to observe LP errors; this
// wrapper falls back to the default strategy if the LP fails.
func ChooseOrder(q *Query, s OrderStrategy) []string {
	order, err := chooseOrderErr(q, s)
	if err != nil {
		return ChooseOrder(q, OrderRelationalFirst)
	}
	return order
}

func chooseOrderErr(q *Query, s OrderStrategy) ([]string, error) {
	if s == OrderMinBound {
		return MinBoundOrder(q)
	}
	return chooseOrderStatic(q, s), nil
}

func chooseOrderStatic(q *Query, s OrderStrategy) []string {
	switch s {
	case OrderDocument:
		return q.Attrs()
	case OrderGreedy:
		return greedyOrder(q)
	default: // OrderRelationalFirst
		var out []string
		seen := make(map[string]bool)
		for _, t := range q.Tables {
			for _, a := range t.Schema().Attrs() {
				if !seen[a] {
					seen[a] = true
					out = append(out, a)
				}
			}
		}
		for _, tw := range q.twigs {
			for _, a := range tw.pattern.Attrs() {
				if !seen[a] {
					seen[a] = true
					out = append(out, a)
				}
			}
		}
		return out
	}
}

// greedyOrder sorts attributes by the minimum distinct-value count over the
// atoms containing them (ties broken by first-appearance order, keeping the
// order deterministic).
func greedyOrder(q *Query) []string {
	attrs := q.Attrs()
	weight := make(map[string]int, len(attrs))
	for _, a := range attrs {
		weight[a] = int(^uint(0) >> 1)
	}
	consider := func(attr string, n int) {
		if w, ok := weight[attr]; ok && n < w {
			weight[attr] = n
		}
	}
	for _, t := range q.Tables {
		for i, a := range t.Schema().Attrs() {
			consider(a, len(t.DistinctValues(i)))
		}
	}
	for _, tw := range q.twigs {
		for _, qa := range tw.pattern.Attrs() {
			consider(qa, tw.ix.TagValues(qa).Len())
		}
	}
	rank := make(map[string]int, len(attrs))
	for i, a := range attrs {
		rank[a] = i
	}
	sort.SliceStable(attrs, func(i, j int) bool {
		wi, wj := weight[attrs[i]], weight[attrs[j]]
		if wi != wj {
			return wi < wj
		}
		return rank[attrs[i]] < rank[attrs[j]]
	})
	return attrs
}

func checkOrder(q *Query, order []string) error {
	want := q.Attrs()
	if len(order) != len(want) {
		return fmt.Errorf("core: attribute order has %d attributes, query has %d", len(order), len(want))
	}
	seen := make(map[string]bool, len(order))
	for _, a := range order {
		seen[a] = true
	}
	for _, a := range want {
		if !seen[a] {
			return fmt.Errorf("core: attribute order is missing %q", a)
		}
	}
	return nil
}

// SortResultTuples orders a result's tuples lexicographically in place, for
// deterministic output and comparisons.
func SortResultTuples(r *Result) {
	sort.Slice(r.Tuples, func(i, j int) bool {
		a, b := r.Tuples[i], r.Tuples[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// EqualResults reports whether two results hold the same tuple set over the
// same attributes (order-insensitive on both attributes and tuples).
func EqualResults(a, b *Result) bool {
	if len(a.Tuples) != len(b.Tuples) {
		return false
	}
	attrs := append([]string(nil), a.Attrs...)
	sort.Strings(attrs)
	pa, err := project(a.Attrs, attrs)
	if err != nil {
		return false
	}
	pb, err := project(b.Attrs, attrs)
	if err != nil {
		return false
	}
	key := func(t relational.Tuple, cols []int) string {
		buf := make([]byte, 0, len(cols)*8)
		for _, c := range cols {
			v := uint64(t[c])
			buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
				byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
		}
		return string(buf)
	}
	set := make(map[string]int, len(a.Tuples))
	for _, t := range a.Tuples {
		set[key(t, pa)]++
	}
	for _, t := range b.Tuples {
		k := key(t, pb)
		if set[k] == 0 {
			return false
		}
		set[k]--
	}
	return true
}
