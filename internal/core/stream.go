package core

import (
	"fmt"

	"repro/internal/relational"
	"repro/internal/wcoj"
)

// XJoinStream evaluates the query like XJoin but streams validated answer
// tuples to emit instead of materializing them — Algorithm 1 with the
// final structural filter applied per tuple, in constant memory beyond the
// current binding. emit receives a transient tuple over the same attribute
// order XJoin would report (Stats.Order); returning false stops the join.
// The returned stats carry the explored per-stage sizes and validation
// counts of the completed portion.
func XJoinStream(q *Query, opts Options, emit func(relational.Tuple) bool) (*Stats, error) {
	algo := "xjoin-stream"
	atoms := buildAtoms(q.twigs, q.Tables, opts.PartialAD)
	if len(atoms) == 0 {
		return nil, fmt.Errorf("core: query has no atoms")
	}
	order := opts.Order
	if order == nil {
		var err error
		order, err = chooseOrderErr(q, opts.Strategy)
		if err != nil {
			return nil, err
		}
	}
	if err := checkOrder(q, order); err != nil {
		return nil, err
	}

	stats := &Stats{Algorithm: algo}
	var validators []*validator
	if !opts.SkipValidation {
		for _, tw := range q.twigs {
			validators = append(validators, newValidator(tw.ix, tw.pattern, order))
		}
	}

	gjStats, err := wcoj.GenericJoinStream(atoms, order, func(t relational.Tuple) bool {
		for _, v := range validators {
			if !v.hasWitness(t) {
				stats.ValidationRemoved++
				return true
			}
		}
		stats.Output++
		if !emit(t) {
			return false
		}
		return opts.Limit <= 0 || stats.Output < opts.Limit
	})
	if err != nil {
		return nil, err
	}
	stats.Order = gjStats.Order
	stats.StageSizes = gjStats.StageSizes
	stats.PeakIntermediate = gjStats.PeakIntermediate
	for _, s := range gjStats.StageSizes {
		stats.TotalIntermediate += s
	}
	return stats, nil
}
