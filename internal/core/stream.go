package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/cachehook"
	"repro/internal/obs"
	"repro/internal/relational"
	"repro/internal/wcoj"
)

// XJoinStream evaluates the query like XJoin but streams validated answer
// tuples to emit instead of materializing them — Algorithm 1 with the
// final structural filter applied per tuple, in constant memory beyond the
// current binding. emit receives a transient tuple over the same attribute
// order XJoin would report (Stats.Order); returning false stops the join.
// The returned stats carry the explored per-stage sizes and validation
// counts of the completed portion.
//
// With Options.Parallelism the morsel-driven parallel executor drives the
// stream: workers validate tuples concurrently, emit calls are serialized
// (emit itself is never called concurrently) but arrive in
// scheduling-dependent order, and both Options.Limit and an emit returning
// false — the Exists path — short-circuit every worker through the
// executor's shared stop flag.
//
// With Options.Context the same stop flag is flipped when the context
// ends: the run returns the statistics of the completed portion with
// Stats.Cancelled set, alongside an error matching ErrCancelled and the
// context's own error. Cancellation latency is bounded by one morsel's
// work; emit is never called after the executor observed the flag.
//
// Failure semantics mirror XJoin: a recovered engine panic returns the
// statistics of the completed portion with Stats.Internal set, alongside
// an error matching ErrInternal; a budget-refused index build reruns in
// the degraded configuration (Stats.Degraded), but — since emitted tuples
// cannot be recalled — only when nothing was emitted yet; otherwise
// ErrBudgetExceeded surfaces with the partial statistics.
func XJoinStream(q *Query, opts Options, emit func(relational.Tuple) bool) (*Stats, error) {
	stats, err := xjoinStreamRun(q, opts, "", emit)
	if stats == nil || stats.Output == 0 {
		if dopts, reason, ok := degradeOptions(q, opts, err); ok {
			return xjoinStreamRun(q, dopts, reason, emit)
		}
	}
	return stats, err
}

// xjoinStreamRun is one XJoinStream attempt under a fixed configuration;
// degraded carries the budget-fallback reason (empty for a first attempt).
func xjoinStreamRun(q *Query, opts Options, degraded string, emit func(relational.Tuple) bool) (*Stats, error) {
	algo := "xjoin-stream"
	guard, gerr := newCancelGuard(opts.Context)
	if gerr != nil {
		return &Stats{Algorithm: algo, ADMode: q.adModeLabel(opts), Cancelled: true, Degraded: degraded}, gerr
	}
	defer guard.stop()
	tr := opts.Trace
	var plan *obs.Span
	if tr != nil {
		plan = tr.Start("plan")
	}
	atoms := q.atoms(opts.atomConfig())
	if len(atoms) == 0 {
		return nil, fmt.Errorf("core: query has no atoms")
	}
	order := opts.Order
	if order == nil {
		var err error
		order, err = chooseOrderErr(q, opts.Strategy)
		if err != nil {
			return nil, err
		}
	}
	if err := checkOrder(q, order); err != nil {
		return nil, err
	}
	bctl := q.buildControl(opts)
	if opts.Plan != PlanWCOJ {
		// Same seam as XJoin: the streaming generic join runs over the
		// hybrid plan's atom list with the unchanged attribute order.
		var herr error
		atoms, _, herr = q.hybridAtoms(opts, guard, bctl, plan)
		if herr != nil {
			plan.End()
			return nil, herr
		}
	}
	if tr != nil {
		plan.SetInt("atoms", int64(len(atoms)))
		plan.SetStr("order", strings.Join(order, " "))
		if opts.Plan != PlanWCOJ {
			plan.SetStr("plan_mode", opts.Plan.String())
		}
		plan.End()
	}

	stats := &Stats{Algorithm: algo, ADMode: q.adModeLabel(opts), Degraded: degraded, Plan: opts.planLabel()}
	var validators []*validator
	if !opts.SkipValidation {
		for _, tw := range q.twigs {
			validators = append(validators, newValidator(tw.ix, tw.pattern, order))
		}
	}

	var gjStats *wcoj.GenericJoinStats
	var err error
	execWorkers := 1
	if opts.Parallelism < 0 || opts.Parallelism > 1 {
		pw := opts.Parallelism
		if pw < 0 {
			pw = 0
		}
		execWorkers = wcoj.ResolveWorkers(pw)
	}
	exec := traceExecStart(tr, &bctl, execWorkers, degraded)
	if opts.Parallelism < 0 || opts.Parallelism > 1 {
		gjStats, err = xjoinStreamParallel(opts, atoms, order, validators, stats, guard, bctl, emit)
	} else {
		gjStats, err = wcoj.GenericJoinStreamOpts(atoms, order, wcoj.StreamOpts{Cancel: guard.cancelFlag(), Check: guard.checkFunc(), Build: bctl}, func(t relational.Tuple) bool {
			for _, v := range validators {
				if !v.hasWitness(t) {
					stats.ValidationRemoved++
					return true
				}
			}
			stats.Output++
			if !emit(t) {
				return false
			}
			return opts.Limit <= 0 || stats.Output < opts.Limit
		})
	}
	exec.End()
	if err != nil {
		if isPanic(err) {
			// The statistics gathered before the isolated panic describe the
			// completed portion, like a cancelled run's.
			stats.Internal = true
			return stats, Internal(err)
		}
		// Partial statistics ride along (the degradation wrapper needs
		// stats.Output; callers get the completed portion's counters).
		return stats, err
	}
	stats.Order = gjStats.Order
	stats.StageSizes = gjStats.StageSizes
	stats.PeakIntermediate = gjStats.PeakIntermediate
	stats.LeafBatches = gjStats.Batches
	stats.MorselSplits = gjStats.Splits
	stats.MorselSteals = gjStats.Steals
	stats.DeadlineStops = gjStats.DeadlineStops
	for _, s := range gjStats.StageSizes {
		stats.TotalIntermediate += s
	}
	addIndexStats(atoms, stats)
	q.addCatalogStats(stats)
	traceExecStats(exec, gjStats, stats)
	if cerr := guard.err(); cerr != nil {
		stats.Cancelled = true
		return stats, cerr
	}
	if gjStats.DeadlineStops > 0 {
		// The deadline gate stopped the run at a morsel boundary (see
		// xjoinParallel); the emitted rows stand, the error says the
		// enumeration did not finish.
		stats.Cancelled = true
		return stats, Cancelled(context.DeadlineExceeded)
	}
	return stats, nil
}

// xjoinStreamParallel streams validated answers out of the morsel-driven
// executor. Validation runs concurrently in the workers; delivery to emit
// is serialized under a mutex, which also guards the Output counter that
// enforces Limit, so at most min(Limit, |answers|) tuples are emitted and
// the first false from emit cancels every worker.
func xjoinStreamParallel(opts Options, atoms []wcoj.Atom, order []string, validators []*validator, stats *Stats, guard *cancelGuard, bctl cachehook.BuildControl, emit func(relational.Tuple) bool) (*wcoj.GenericJoinStats, error) {
	pworkers := opts.Parallelism
	if pworkers < 0 {
		pworkers = 0
	}
	workers := wcoj.ResolveWorkers(pworkers)
	removed := make([]int, workers)
	var mu sync.Mutex
	done := false
	gjStats, err := wcoj.GenericJoinParallelMorsels(atoms, order, wcoj.ParallelOpts{Workers: workers, Cancel: guard.cancelFlag(), Check: guard.checkFunc(), Build: bctl, Deadline: contextDeadline(opts.Context)},
		func(w int) func(wcoj.OrdKey, relational.Tuple) bool {
			return func(_ wcoj.OrdKey, t relational.Tuple) bool {
				for _, v := range validators {
					if !v.hasWitness(t) {
						removed[w]++
						return true
					}
				}
				mu.Lock()
				defer mu.Unlock()
				if done {
					return false
				}
				stats.Output++
				if !emit(t) {
					done = true
					return false
				}
				if opts.Limit > 0 && stats.Output >= opts.Limit {
					done = true
					return false
				}
				return true
			}
		})
	for _, r := range removed {
		stats.ValidationRemoved += r
	}
	if err != nil {
		return nil, err
	}
	return gjStats, nil
}
