package core

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrCancelled reports that a run was abandoned because its context was
// cancelled or its deadline expired. Errors returned by the executors for
// a cancelled run match both this sentinel and the context's own error,
// so callers can branch either way:
//
//	errors.Is(err, core.ErrCancelled)         // "the run did not finish"
//	errors.Is(err, context.DeadlineExceeded)  // "...because it timed out"
//
// A cancellation error travels alongside partial results: XJoin returns
// the validated tuples found so far and XJoinStream the statistics of the
// completed portion, both with Stats.Cancelled set.
var ErrCancelled = errors.New("core: query cancelled")

// cancelledError wraps the context's cause so errors.Is matches both the
// package sentinel and context.Canceled / context.DeadlineExceeded.
type cancelledError struct{ cause error }

func (e *cancelledError) Error() string   { return "core: query cancelled: " + e.cause.Error() }
func (e *cancelledError) Unwrap() []error { return []error{ErrCancelled, e.cause} }

// Cancelled wraps a context error into the package's cancellation error.
func Cancelled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return &cancelledError{cause: cause}
}

// cancelGuard bridges a context onto the executors' atomic stop flag: one
// watcher goroutine flips the flag when the context ends, and stop()
// retires the watcher when the run finishes first. A nil guard is the
// fast path for runs without a cancellable context — every method is
// nil-safe and the executors then see a nil flag, paying nothing.
type cancelGuard struct {
	ctx  context.Context
	flag atomic.Bool
	done chan struct{}
}

// newCancelGuard returns the guard for ctx, nil when ctx can never be
// cancelled (nil or no Done channel — context.Background and friends),
// or an error when ctx is already over, so callers fail before doing any
// join work.
func newCancelGuard(ctx context.Context) (*cancelGuard, error) {
	if ctx == nil || ctx.Done() == nil {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, Cancelled(err)
	}
	g := &cancelGuard{ctx: ctx, done: make(chan struct{})}
	go func() {
		select {
		case <-ctx.Done():
			g.flag.Store(true)
		case <-g.done:
		}
	}()
	return g, nil
}

// cancelFlag exposes the flag the executors poll (nil for a nil guard).
func (g *cancelGuard) cancelFlag() *atomic.Bool {
	if g == nil {
		return nil
	}
	return &g.flag
}

// checkFunc exposes the executors' periodic direct context probe — the
// backstop that bounds cancellation latency even when the watcher
// goroutine is starved of CPU (nil for a nil guard).
func (g *cancelGuard) checkFunc() func() bool {
	if g == nil {
		return nil
	}
	return func() bool { return g.ctx.Err() != nil }
}

// stop retires the watcher goroutine; defer it right after a successful
// newCancelGuard.
func (g *cancelGuard) stop() {
	if g != nil {
		close(g.done)
	}
}

// err reports the cancellation error if the context ended, else nil. A
// run that completes in the same instant its context expires may still
// report cancellation — indistinguishable from stopping one tuple
// earlier, and the safe direction for callers that retry.
func (g *cancelGuard) err() error {
	if g == nil {
		return nil
	}
	if e := g.ctx.Err(); e != nil {
		return Cancelled(e)
	}
	return nil
}
