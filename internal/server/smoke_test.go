package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestXmserveBinarySmoke is the end-to-end smoke test CI runs: build the
// real xmserve binary, start it on a free port, drive it over actual
// HTTP — a normal query, a deadline-exceeded partial answer, an
// admission-rejected 429 — validate its /metrics exposition with
// obs.CheckText, and shut it down gracefully with SIGTERM.
func TestXmserveBinarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs a binary")
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "xmserve")
	build := exec.Command(gobin, "build", "-o", bin, "repro/cmd/xmserve")
	build.Dir = "../.." // module root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Tight admission on purpose: 1 slot + 1 queue spot makes the 429
	// path reachable with three concurrent requests.
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-demo", "1", "-scale", "64", "-maxconc", "1", "-maxqueue", "1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = nil
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line advertises the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line: %v", sc.Err())
	}
	line := sc.Text()
	i := strings.Index(line, "http://")
	j := strings.Index(line, " (")
	if i < 0 || j < i {
		t.Fatalf("unparseable startup line %q", line)
	}
	base := line[i:j]
	go io.Copy(io.Discard, stdout)

	// 1. A normal query answers rows and misses, then hits, the cache.
	for _, wantCache := range []string{"miss", "hit"} {
		qr := smokeQuery(t, base, `SELECT userID, price FROM R, TWIG '/invoices/orderLine[orderID]/price'`, 0)
		if qr.Cache != wantCache || len(qr.Rows) == 0 || qr.Cancelled {
			t.Fatalf("warm round: cache=%q rows=%d cancelled=%v, want %s", qr.Cache, len(qr.Rows), qr.Cancelled, wantCache)
		}
	}

	// 2. A tight deadline on the heavy grid join returns a partial
	// answer, not an error.
	qr := smokeQuery(t, base, `SELECT * FROM G1, G2`, 1)
	if !qr.Cancelled {
		t.Fatal("1ms deadline on the heavy join was not cancelled")
	}
	if len(qr.Rows) >= 64*64*64 {
		t.Fatal("cancelled run returned the full result")
	}

	// 3. Overrun the admission queue: of three concurrent heavy
	// requests against 1 slot + 1 queue spot, at least one must 429.
	var mu sync.Mutex
	codes := map[int]int{}
	var wg sync.WaitGroup
	for k := 0; k < 3; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest("POST", base+"/query", strings.NewReader(`SELECT * FROM G1, G2`))
			req.Header.Set("X-Deadline-Ms", "30000")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			codes[resp.StatusCode]++
			mu.Unlock()
		}()
		// Stagger so the first request holds the slot before the rest
		// arrive.
		time.Sleep(50 * time.Millisecond)
	}
	wg.Wait()
	if codes[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no 429 from 3 concurrent heavy requests at maxconc=1 maxqueue=1: %v", codes)
	}

	// 4. The tenant's metrics exposition passes the Prometheus
	// text-format linter and shows the deadline response.
	resp, err := http.Get(base + "/tenants/demo0/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if err := obs.CheckText(bytes.NewReader(body)); err != nil {
		t.Fatalf("metrics lint: %v", err)
	}
	for _, want := range []string{"xmserve_requests_total", "xmserve_deadline_responses_total", "xmserve_admission_rejected_total"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("metrics missing %s:\n%s", want, body)
		}
	}

	// 5. SIGTERM shuts the server down cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("xmserve exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("xmserve did not exit after SIGTERM")
	}
}

func smokeQuery(t *testing.T, base, query string, deadlineMS int) queryResponse {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/query", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	if deadlineMS > 0 {
		req.Header.Set("X-Deadline-Ms", "1")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr queryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	return qr
}
