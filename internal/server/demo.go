package server

import (
	"fmt"
	"strings"

	xmjoin "repro"
)

// DemoDatabase builds a self-contained demo tenant: an invoices XML
// document with scale orderLines, relational tables R(orderID, userID)
// and S(userID, region) joining into it, and two dense "grid" tables
// G1(gx, gy) / G2(gy, gz) whose join G1 ⋈ G2 fans out to scale³ rows —
// deliberately heavy, so tight deadlines and admission queues have
// something real to bite on. Every query in DemoWarmQueries and
// DemoHeavyQuery runs against this schema.
func DemoDatabase(scale int) (*xmjoin.Database, error) {
	if scale < 2 {
		scale = 2
	}
	db := xmjoin.NewDatabase()

	var xb strings.Builder
	xb.WriteString("<invoices>\n")
	for i := 0; i < scale; i++ {
		fmt.Fprintf(&xb, "  <orderLine><orderID>%d</orderID><ISBN>isbn-%d</ISBN><price>%d</price></orderLine>\n",
			10000+i, i%97, 5+(i*7)%90)
	}
	xb.WriteString("</invoices>\n")
	if err := db.LoadXMLString(xb.String()); err != nil {
		return nil, err
	}

	users := []string{"jack", "tom", "bob", "alice", "carol", "dave", "erin", "frank"}
	regions := []string{"east", "west", "north", "south"}
	r := make([][]string, 0, scale)
	for i := 0; i < scale; i++ {
		r = append(r, []string{fmt.Sprint(10000 + i), users[i%len(users)]})
	}
	if err := db.AddTableRows("R", []string{"orderID", "userID"}, r); err != nil {
		return nil, err
	}
	s := make([][]string, 0, len(users))
	for i, u := range users {
		s = append(s, []string{u, regions[i%len(regions)]})
	}
	if err := db.AddTableRows("S", []string{"userID", "region"}, s); err != nil {
		return nil, err
	}

	// Dense grids: G1 holds every (gx, gy) pair and G2 every (gy, gz)
	// pair over scale values, so G1 ⋈ G2 on gy yields scale³ rows.
	g1 := make([][]string, 0, scale*scale)
	g2 := make([][]string, 0, scale*scale)
	for a := 0; a < scale; a++ {
		for b := 0; b < scale; b++ {
			g1 = append(g1, []string{fmt.Sprintf("x%d", a), fmt.Sprintf("y%d", b)})
			g2 = append(g2, []string{fmt.Sprintf("y%d", a), fmt.Sprintf("z%d", b)})
		}
	}
	if err := db.AddTableRows("G1", []string{"gx", "gy"}, g1); err != nil {
		return nil, err
	}
	if err := db.AddTableRows("G2", []string{"gy", "gz"}, g2); err != nil {
		return nil, err
	}
	return db, nil
}

// DemoWarmQueries is the warm working set a load generator replays: a
// small fixed batch of statements that should all become prepared-cache
// hits after the first round.
func DemoWarmQueries() []string {
	return []string{
		`SELECT * FROM R, TWIG '/invoices/orderLine[orderID]/price'`,
		`SELECT userID, price FROM R, TWIG '/invoices/orderLine[orderID]/price'`,
		`SELECT userID, region, price FROM R, S, TWIG '/invoices/orderLine[orderID]/price'`,
		`SELECT userID, COUNT(*) FROM R, TWIG '/invoices/orderLine[orderID]/price' GROUP BY userID`,
		`SELECT region, COUNT(*) FROM R, S, TWIG '/invoices/orderLine[orderID]/price' GROUP BY region`,
	}
}

// DemoColdQuery returns the i-th statement of an endless cold stream:
// each i yields a distinct statement text (a distinct LIMIT), so every
// request misses the prepared cache and pays preparation — the contrast
// workload to DemoWarmQueries.
func DemoColdQuery(i int) string {
	return fmt.Sprintf(`SELECT userID, price FROM R, TWIG '/invoices/orderLine[orderID]/price' LIMIT %d`, i%500+1)
}

// DemoLimitQuery is the cheap LIMIT probe: pushes LIMIT into the engine,
// so it returns after a handful of morsels regardless of scale.
func DemoLimitQuery() string {
	return `SELECT * FROM R, S, TWIG '/invoices/orderLine[orderID]/price' LIMIT 5`
}

// DemoHeavyQuery is the deliberately expensive statement (scale³ output
// rows): the target for deadline and admission-control experiments.
func DemoHeavyQuery() string {
	return `SELECT * FROM G1, G2`
}
