package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/testutil"
)

// TestMultiTenantIsolation drives several tenants concurrently — run it
// under -race — and asserts the session boundaries hold: each tenant has
// its own catalog budget, its own prepared-statement cache, and its own
// metrics registry. Mid-run one tenant's catalog budget is squeezed to
// almost nothing; the victim must keep answering correctly (rebuilding
// evicted indexes), and the other tenants must not notice: their
// prepared caches stay warm and their counters record exactly their own
// traffic.
func TestMultiTenantIsolation(t *testing.T) {
	testutil.CheckGoroutines(t)

	srv := New(Config{})
	tenants := []struct {
		name   string
		budget int64
	}{
		{"alpha", 1 << 20},
		{"bravo", 2 << 20},
		{"victim", 1 << 20},
	}
	for _, tc := range tenants {
		db, err := DemoDatabase(16)
		if err != nil {
			t.Fatal(err)
		}
		// Queue deep enough that this test's workers are never 429ed —
		// admission rejection has its own test.
		if _, err := srv.AddTenantConfig(tc.name, db, TenantConfig{CatalogBudget: tc.budget, MaxConcurrent: 2, MaxQueue: 16}); err != nil {
			t.Fatal(err)
		}
		if got := db.Catalog().Stats().Budget; got != tc.budget {
			t.Fatalf("%s: budget = %d, want %d", tc.name, got, tc.budget)
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const (
		workersPerTenant = 4
		roundsPerWorker  = 20
	)
	warm := DemoWarmQueries()
	var wg sync.WaitGroup
	errc := make(chan error, len(tenants)*workersPerTenant)
	squeeze := make(chan struct{})
	for _, tc := range tenants {
		for w := 0; w < workersPerTenant; w++ {
			wg.Add(1)
			go func(tenant string, w int) {
				defer wg.Done()
				for r := 0; r < roundsPerWorker; r++ {
					q := warm[(w+r)%len(warm)]
					body, _ := json.Marshal(queryRequest{Tenant: tenant, Query: q})
					resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
					if err != nil {
						errc <- fmt.Errorf("%s: %v", tenant, err)
						return
					}
					data, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errc <- fmt.Errorf("%s: status %d: %s", tenant, resp.StatusCode, data)
						return
					}
					var qr queryResponse
					if err := json.Unmarshal(data, &qr); err != nil {
						errc <- fmt.Errorf("%s: %v", tenant, err)
						return
					}
					if qr.Cancelled || len(qr.Rows) == 0 {
						errc <- fmt.Errorf("%s: cancelled=%v rows=%d for %q", tenant, qr.Cancelled, len(qr.Rows), q)
						return
					}
					// Halfway through, one worker squeezes the victim's
					// catalog budget while everyone keeps querying.
					if tenant == "victim" && w == 0 && r == roundsPerWorker/2 {
						vt, _ := srv.Tenant("victim")
						vt.Database().Catalog().SetBudget(64)
						close(squeeze)
					}
				}
			}(tc.name, w)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	select {
	case <-squeeze:
	default:
		t.Fatal("squeeze never happened")
	}

	const perTenant = workersPerTenant * roundsPerWorker
	for _, tc := range tenants {
		tn, ok := srv.Tenant(tc.name)
		if !ok {
			t.Fatalf("tenant %s vanished", tc.name)
		}
		// No cross-tenant metric bleed: each registry saw exactly its
		// own tenant's traffic.
		if got := tn.admissionStats().Admitted; got != perTenant {
			t.Errorf("%s: admitted = %d, want %d", tc.name, got, perTenant)
		}
		var buf bytes.Buffer
		if err := tn.Metrics().Write(&buf); err != nil {
			t.Fatalf("%s: metrics write: %v", tc.name, err)
		}
		if err := obs.CheckText(bytes.NewReader(buf.Bytes())); err != nil {
			t.Errorf("%s: metrics lint: %v", tc.name, err)
		}
		want := fmt.Sprintf("xmserve_requests_total %d", perTenant)
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("%s: metrics missing %q", tc.name, want)
		}
		// Prepared caches stayed warm everywhere — the squeeze evicts
		// catalog indexes, never prepared plans, and never crosses
		// tenants.
		st := tn.prep.stats()
		if st.Misses != int64(len(warm)) || st.Hits != int64(perTenant-len(warm)) {
			t.Errorf("%s: prep cache hits=%d misses=%d, want %d/%d",
				tc.name, st.Hits, st.Misses, perTenant-len(warm), len(warm))
		}
	}

	// The squeeze really bit: the victim's catalog shrank under its
	// floor-level budget and recorded evictions; the others kept their
	// generous budgets.
	vt, _ := srv.Tenant("victim")
	vs := vt.Database().Catalog().Stats()
	if vs.Budget != 64 {
		t.Errorf("victim budget = %d, want 64", vs.Budget)
	}
	if vs.Evictions == 0 {
		t.Error("victim catalog recorded no evictions after the squeeze")
	}
	for _, name := range []string{"alpha", "bravo"} {
		tn, _ := srv.Tenant(name)
		cs := tn.Database().Catalog().Stats()
		if cs.Budget == 64 {
			t.Errorf("%s: budget followed the victim's squeeze", name)
		}
		if cs.ResidentBytes == 0 {
			t.Errorf("%s: catalog emptied by another tenant's squeeze", name)
		}
	}
}
