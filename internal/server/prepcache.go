// Package server implements the multi-tenant HTTP query service behind
// cmd/xmserve: per-tenant Database-backed sessions with a prepared-
// statement cache keyed by mmql text, catalog byte budgets, per-tenant
// metrics registries, concurrency admission control, and request
// deadlines that flow into the engine's deadline-aware morsel scheduler.
package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/mmql"
)

// prepCache is one tenant's prepared-statement cache: an LRU over mmql
// statement text. A miss prepares under a per-entry once, so concurrent
// first requests for one statement share a single plan resolution instead
// of racing N of them; a hit is a map lookup plus a list splice. Entries
// whose preparation failed are not retained — the next request retries,
// since the failure may have been contextual (a cancelled context).
type prepCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used; values are *prepEntry
	entries map[string]*list.Element
	hits    atomic.Int64
	misses  atomic.Int64
}

type prepEntry struct {
	key  string
	once sync.Once
	p    *mmql.Prepared
	err  error
}

func newPrepCache(capacity int) *prepCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &prepCache{cap: capacity, lru: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the prepared statement for key, building it at most once
// per cache generation via build. hit reports whether an entry already
// existed (even if its build is still in flight on another goroutine —
// this caller reuses it, which is a hit).
func (c *prepCache) get(key string, build func() (*mmql.Prepared, error)) (p *mmql.Prepared, hit bool, err error) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.lru.MoveToFront(el)
		c.hits.Add(1)
	} else {
		el = c.lru.PushFront(&prepEntry{key: key})
		c.entries[key] = el
		c.misses.Add(1)
		if c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.entries, oldest.Value.(*prepEntry).key)
		}
	}
	e := el.Value.(*prepEntry)
	c.mu.Unlock()

	e.once.Do(func() { e.p, e.err = build() })
	if e.err != nil {
		// Drop the failed entry (if it is still the cached one) so a
		// later request rebuilds rather than replaying a stale error.
		c.mu.Lock()
		if cur, ok := c.entries[key]; ok && cur == el {
			c.lru.Remove(cur)
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return nil, ok, e.err
	}
	return e.p, ok, nil
}

// PrepCacheStats is a prepared-statement cache snapshot, served by
// /tenants and /debug/catalog.
type PrepCacheStats struct {
	Capacity int   `json:"capacity"`
	Entries  int   `json:"entries"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
}

func (c *prepCache) stats() PrepCacheStats {
	c.mu.Lock()
	n := c.lru.Len()
	c.mu.Unlock()
	return PrepCacheStats{Capacity: c.cap, Entries: n, Hits: c.hits.Load(), Misses: c.misses.Load()}
}
