package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// demoServer builds a two-tenant server over small demo databases and
// returns it with its test listener.
func demoServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	for _, name := range []string{"acme", "globex"} {
		db, err := DemoDatabase(8)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.AddTenant(name, db); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestQueryEndpointColdThenWarm(t *testing.T) {
	_, ts := demoServer(t, Config{})
	q := `SELECT userID, price FROM R, TWIG '/invoices/orderLine[orderID]/price'`
	for round, wantCache := range []string{"miss", "hit"} {
		resp, data := postJSON(t, ts.URL+"/query", queryRequest{Tenant: "acme", Query: q})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, resp.StatusCode, data)
		}
		var qr queryResponse
		if err := json.Unmarshal(data, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Tenant != "acme" || qr.Cache != wantCache {
			t.Fatalf("round %d: tenant=%q cache=%q, want acme/%s", round, qr.Tenant, qr.Cache, wantCache)
		}
		if len(qr.Columns) != 2 || len(qr.Rows) == 0 {
			t.Fatalf("round %d: columns=%v rows=%d", round, qr.Columns, len(qr.Rows))
		}
		if qr.Cancelled {
			t.Fatalf("round %d: unexpected cancellation", round)
		}
	}
}

func TestQueryRawBodyAndHeaders(t *testing.T) {
	_, ts := demoServer(t, Config{})
	req, err := http.NewRequest("POST", ts.URL+"/query",
		strings.NewReader(`SELECT region, COUNT(*) FROM R, S, TWIG '/invoices/orderLine[orderID]/price' GROUP BY region`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("X-Tenant", "globex")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr queryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Tenant != "globex" || len(qr.Rows) == 0 {
		t.Fatalf("tenant=%q rows=%d", qr.Tenant, len(qr.Rows))
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := demoServer(t, Config{})
	cases := []struct {
		name   string
		req    queryRequest
		status int
		code   string
	}{
		{"unknown tenant", queryRequest{Tenant: "nope", Query: "SELECT * FROM R"}, http.StatusNotFound, "unknown_tenant"},
		{"no tenant (two registered)", queryRequest{Query: "SELECT * FROM R"}, http.StatusBadRequest, "bad_request"},
		{"empty query", queryRequest{Tenant: "acme"}, http.StatusBadRequest, "bad_request"},
		{"parse error", queryRequest{Tenant: "acme", Query: "SELEKT nope"}, http.StatusBadRequest, "query_error"},
		{"unknown table", queryRequest{Tenant: "acme", Query: "SELECT * FROM NoSuchTable"}, http.StatusBadRequest, "query_error"},
	}
	for _, tc := range cases {
		resp, data := postJSON(t, ts.URL+"/query", tc.req)
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, data)
		}
		var er errorResponse
		if err := json.Unmarshal(data, &er); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if er.Code != tc.code {
			t.Fatalf("%s: code %q, want %q", tc.name, er.Code, tc.code)
		}
	}
}

func TestSingleTenantDefault(t *testing.T) {
	srv := New(Config{})
	db, err := DemoDatabase(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddTenant("solo", db); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, data := postJSON(t, ts.URL+"/query", queryRequest{Query: "SELECT * FROM R"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr queryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Tenant != "solo" {
		t.Fatalf("tenant = %q, want solo", qr.Tenant)
	}
}

func TestStreamEndpoint(t *testing.T) {
	_, ts := demoServer(t, Config{})
	q := `SELECT userID, price FROM R, TWIG '/invoices/orderLine[orderID]/price'`
	resp, data := postJSON(t, ts.URL+"/stream", queryRequest{Tenant: "acme", Query: q})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var chunks []streamChunk
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var c streamChunk
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		chunks = append(chunks, c)
	}
	if len(chunks) < 3 {
		t.Fatalf("want header+rows+trailer, got %d chunks", len(chunks))
	}
	if got := chunks[0].Columns; len(got) != 2 {
		t.Fatalf("header columns = %v", got)
	}
	rows := 0
	for _, c := range chunks[1 : len(chunks)-1] {
		rows += len(c.Rows)
	}
	last := chunks[len(chunks)-1]
	if !last.Done || last.RowCount != rows || last.Error != "" || last.Cancelled {
		t.Fatalf("trailer = %+v with %d streamed rows", last, rows)
	}
	if last.Cache != "miss" {
		t.Fatalf("first stream should miss the prep cache, got %q", last.Cache)
	}
}

func TestStreamNonStreamableFallsBack(t *testing.T) {
	_, ts := demoServer(t, Config{})
	q := `SELECT userID, COUNT(*) FROM R, TWIG '/invoices/orderLine[orderID]/price' GROUP BY userID`
	resp, data := postJSON(t, ts.URL+"/stream", queryRequest{Tenant: "acme", Query: q})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	var last streamChunk
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	if !last.Done || last.RowCount == 0 {
		t.Fatalf("trailer = %+v", last)
	}
}

func TestExplainEndpoint(t *testing.T) {
	_, ts := demoServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/explain",
		queryRequest{Tenant: "acme", Query: `SELECT * FROM R, TWIG '/invoices/orderLine[orderID]/price'`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr queryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Text == "" {
		t.Fatal("empty plan text")
	}
}

func TestExplainStatementBypassesCache(t *testing.T) {
	srv, ts := demoServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/query",
		queryRequest{Tenant: "acme", Query: `EXPLAIN SELECT * FROM R, TWIG '/invoices/orderLine[orderID]/price'`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr queryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Cache != "bypass" || qr.Text == "" {
		t.Fatalf("cache=%q text=%q, want bypass with plan text", qr.Cache, qr.Text)
	}
	tn, _ := srv.Tenant("acme")
	if st := tn.prep.stats(); st.Entries != 0 {
		t.Fatalf("EXPLAIN entered the prep cache: %+v", st)
	}
}

func TestTenantsEndpoint(t *testing.T) {
	_, ts := demoServer(t, Config{})
	// Touch one tenant so its counters move.
	postJSON(t, ts.URL+"/query", queryRequest{Tenant: "acme", Query: "SELECT * FROM R"})
	resp, err := http.Get(ts.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sums []TenantSummary
	if err := json.Unmarshal(data, &sums); err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 || sums[0].Name != "acme" || sums[1].Name != "globex" {
		t.Fatalf("summaries = %+v", sums)
	}
	if sums[0].Admission.Admitted != 1 || sums[1].Admission.Admitted != 0 {
		t.Fatalf("admitted: acme=%d globex=%d", sums[0].Admission.Admitted, sums[1].Admission.Admitted)
	}
	if len(sums[0].Tables) == 0 || len(sums[0].Docs) == 0 {
		t.Fatalf("acme summary missing schema: %+v", sums[0])
	}
}

func TestTenantDebugSurfaces(t *testing.T) {
	_, ts := demoServer(t, Config{})
	postJSON(t, ts.URL+"/query", queryRequest{Tenant: "acme", Query: "SELECT * FROM R"})

	resp, err := http.Get(ts.URL + "/tenants/acme/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if err := obs.CheckText(bytes.NewReader(body)); err != nil {
		t.Fatalf("metrics lint: %v\n%s", err, body)
	}
	if !bytes.Contains(body, []byte("xmserve_requests_total 1")) {
		t.Fatalf("metrics missing request counter:\n%s", body)
	}

	resp, err = http.Get(ts.URL + "/tenants/acme/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slowlog status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/tenants/acme/debug/catalog")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap CatalogSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("catalog snapshot: %v\n%s", err, data)
	}
	if snap.Tenant != "acme" || snap.Prepared.Capacity == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}

	resp, err = http.Get(ts.URL + "/tenants/nope/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant debug status %d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := demoServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestAdmissionOverflow429(t *testing.T) {
	srv := New(Config{})
	db, err := DemoDatabase(4)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := srv.AddTenantConfig("tight", db, TenantConfig{MaxConcurrent: 1, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Occupy the single slot directly.
	release, err := tn.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Fill the one queue spot with a request that blocks in admission.
	queued := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/query", queryRequest{Query: "SELECT * FROM R"})
		queued <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for tn.pending.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never showed up in pending")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: the next request must bounce with 429 + Retry-After.
	resp, data := postJSON(t, ts.URL+"/query", queryRequest{Query: "SELECT * FROM R"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var er errorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "overloaded" {
		t.Fatalf("code = %q", er.Code)
	}

	release()
	if status := <-queued; status != http.StatusOK {
		t.Fatalf("queued request finished with %d", status)
	}
	if got := tn.admissionStats().Rejected; got != 1 {
		t.Fatalf("rejected = %d", got)
	}
}

func TestDeadlineReturnsPartialResult(t *testing.T) {
	srv := New(Config{})
	db, err := DemoDatabase(64) // G1 ⋈ G2 fans out to 262144 rows
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddTenant("deadline", db); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Full run first: how long the heavy query takes unconstrained.
	start := time.Now()
	resp, data := postJSON(t, ts.URL+"/query", queryRequest{Query: DemoHeavyQuery()})
	full := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full run status %d: %s", resp.StatusCode, data)
	}
	var fullQR queryResponse
	if err := json.Unmarshal(data, &fullQR); err != nil {
		t.Fatal(err)
	}
	if fullQR.Cancelled || len(fullQR.Rows) != 64*64*64 {
		t.Fatalf("full run: cancelled=%v rows=%d", fullQR.Cancelled, len(fullQR.Rows))
	}

	// Now with a deadline far below the full runtime.
	req, err := http.NewRequest("POST", ts.URL+"/query", strings.NewReader(DemoHeavyQuery()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Deadline-Ms", "1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline run status %d: %s", resp.StatusCode, data)
	}
	var qr queryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Cancelled {
		t.Fatalf("1ms deadline on a %v query did not cancel (rows=%d)", full, len(qr.Rows))
	}
	if len(qr.Rows) >= 64*64*64 {
		t.Fatal("cancelled run returned the full result")
	}
	if qr.Stats == nil || !qr.Stats.Cancelled {
		t.Fatalf("stats = %+v, want Cancelled", qr.Stats)
	}
}

func TestDefaultDeadlineApplies(t *testing.T) {
	srv := New(Config{DefaultDeadline: time.Millisecond})
	db, err := DemoDatabase(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddTenant("d", db); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, data := postJSON(t, ts.URL+"/query", queryRequest{Query: DemoHeavyQuery()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr queryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Cancelled {
		t.Fatal("server default deadline did not apply")
	}
}

func TestMaxDeadlineClamps(t *testing.T) {
	srv := New(Config{MaxDeadline: time.Millisecond})
	db, err := DemoDatabase(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddTenant("d", db); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// The client asks for a generous minute; MaxDeadline clamps it to 1ms.
	resp, data := postJSON(t, ts.URL+"/query", queryRequest{Query: DemoHeavyQuery(), DeadlineMS: 60000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr queryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Cancelled {
		t.Fatal("MaxDeadline clamp did not apply")
	}
}

func TestAddTenantValidation(t *testing.T) {
	srv := New(Config{})
	db, err := DemoDatabase(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddTenant("", db); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := srv.AddTenant("a/b", db); err == nil {
		t.Fatal("name with slash accepted")
	}
	if _, err := srv.AddTenant("ok", db); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddTenant("ok", db); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestPrepCacheLRUEviction(t *testing.T) {
	srv := New(Config{})
	db, err := DemoDatabase(4)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := srv.AddTenantConfig("lru", db, TenantConfig{PrepCacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for i := 0; i < 5; i++ {
		resp, data := postJSON(t, ts.URL+"/query", queryRequest{Query: DemoColdQuery(i)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cold %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
	st := tn.prep.stats()
	if st.Entries != 2 || st.Misses != 5 || st.Hits != 0 {
		t.Fatalf("cache stats after 5 distinct statements, capacity 2: %+v", st)
	}
}

func TestStreamWithDeadlineReportsCancelledTrailer(t *testing.T) {
	srv := New(Config{})
	db, err := DemoDatabase(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddTenant("d", db); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	req, err := http.NewRequest("POST", ts.URL+"/stream", strings.NewReader(DemoHeavyQuery()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Deadline-Ms", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	var last streamChunk
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatalf("trailer: %v\n%s", err, lines[len(lines)-1])
	}
	if !last.Done || !last.Cancelled {
		t.Fatalf("trailer = %+v, want done+cancelled", last)
	}
	if last.RowCount >= 64*64*64 {
		t.Fatal("cancelled stream delivered the full result")
	}
}

func BenchmarkQueryWarm(b *testing.B) {
	srv := New(Config{})
	db, err := DemoDatabase(16)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.AddTenant("bench", db); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body, _ := json.Marshal(queryRequest{Query: `SELECT userID, price FROM R, TWIG '/invoices/orderLine[orderID]/price'`})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
