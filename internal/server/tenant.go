package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync/atomic"

	xmjoin "repro"
	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/wcoj"
)

// ErrOverloaded is the typed admission failure: the tenant's execution
// slots are busy and its wait queue is full. The HTTP layer maps it onto
// 429 Too Many Requests with a Retry-After hint.
var ErrOverloaded = errors.New("server: tenant overloaded (admission queue full)")

// TenantConfig overrides the server defaults for one tenant. Zero values
// inherit from the server's Config.
type TenantConfig struct {
	// CatalogBudget caps the tenant database's resident index bytes
	// (xmjoin's shared catalog LRU); <= 0 leaves the budget unlimited.
	CatalogBudget int64
	// MaxConcurrent is the tenant's execution slots; 0 derives from the
	// server Config (see Config.MaxConcurrent).
	MaxConcurrent int
	// MaxQueue is how many admitted-but-waiting requests may queue
	// beyond the slots before new ones are rejected; 0 derives.
	MaxQueue int
	// Parallelism is the per-query ExecOptions.Parallelism; 0 derives.
	Parallelism int
	// PrepCacheSize is the prepared-statement LRU capacity; 0 derives.
	PrepCacheSize int
}

// Tenant is one tenant's session state: its database (own catalog, own
// slow-query log), its metrics registry (every query of this tenant
// reports here and nowhere else), its prepared-statement cache, and its
// admission control.
type Tenant struct {
	name        string
	db          *xmjoin.Database
	reg         *obs.Registry
	prep        *prepCache
	debug       http.Handler
	parallelism int

	slots    int
	maxQueue int
	sem      chan struct{}
	pending  atomic.Int64

	mRequests *obs.Counter
	mRejected *obs.Counter
	mDeadline *obs.Counter
	mErrors   *obs.Counter
	mInflight *obs.Gauge
}

func newTenant(name string, db *xmjoin.Database, cfg Config, tc TenantConfig) *Tenant {
	if tc.CatalogBudget > 0 {
		db.Catalog().SetBudget(tc.CatalogBudget)
	}
	parallelism := tc.Parallelism
	if parallelism == 0 {
		parallelism = cfg.Parallelism
	}
	slots := tc.MaxConcurrent
	if slots == 0 {
		slots = cfg.MaxConcurrent
	}
	if slots == 0 {
		// Size admission off what one query consumes: with each query
		// fanning out over ResolveWorkers(parallelism) morsel workers,
		// the machine sustains about GOMAXPROCS/workers of them at once.
		slots = wcoj.ResolveWorkers(0) / wcoj.ResolveWorkers(positiveWorkers(parallelism))
		if slots < 1 {
			slots = 1
		}
	}
	maxQueue := tc.MaxQueue
	if maxQueue == 0 {
		maxQueue = cfg.MaxQueue
	}
	if maxQueue == 0 {
		maxQueue = 2 * slots
	}
	prepSize := tc.PrepCacheSize
	if prepSize == 0 {
		prepSize = cfg.PrepCacheSize
	}
	reg := obs.NewRegistry()
	db.UseMetricsRegistry(reg)
	t := &Tenant{
		name:        name,
		db:          db,
		reg:         reg,
		prep:        newPrepCache(prepSize),
		parallelism: parallelism,
		slots:       slots,
		maxQueue:    maxQueue,
		sem:         make(chan struct{}, slots),
		mRequests:   reg.Counter("xmserve_requests_total", "Requests accepted for this tenant."),
		mRejected:   reg.Counter("xmserve_admission_rejected_total", "Requests rejected with 429 because the admission queue was full."),
		mDeadline:   reg.Counter("xmserve_deadline_responses_total", "Responses that returned partial results because the request deadline pre-empted the run."),
		mErrors:     reg.Counter("xmserve_request_errors_total", "Requests that failed with a non-deadline error."),
		mInflight:   reg.Gauge("xmserve_inflight_requests", "Requests currently executing for this tenant."),
	}
	t.debug = obs.Handler(reg,
		obs.Extra{Pattern: "/debug/slowlog", Handler: obs.TextHandler(func() string { return db.SlowLog().Render() })},
		obs.Extra{Pattern: "/debug/catalog", Handler: http.HandlerFunc(t.serveCatalogSnapshot)},
	)
	return t
}

// positiveWorkers maps the ExecOptions.Parallelism convention (-1 =
// GOMAXPROCS, 0/1 = serial) onto wcoj.ResolveWorkers input.
func positiveWorkers(parallelism int) int {
	if parallelism < 0 {
		return 0 // GOMAXPROCS
	}
	if parallelism == 0 {
		return 1
	}
	return parallelism
}

// admit acquires one execution slot, waiting while the queue has room.
// The returned release must be called exactly once when non-nil err is
// nil. Overflow beyond slots+maxQueue returns ErrOverloaded immediately;
// a context ending while queued returns its error.
func (t *Tenant) admit(ctx context.Context) (release func(), err error) {
	if n := t.pending.Add(1); n > int64(t.slots+t.maxQueue) {
		t.pending.Add(-1)
		t.mRejected.Inc()
		return nil, ErrOverloaded
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case t.sem <- struct{}{}:
	case <-done:
		t.pending.Add(-1)
		return nil, ctx.Err()
	}
	t.mRequests.Inc()
	t.mInflight.Add(1)
	return func() {
		<-t.sem
		t.pending.Add(-1)
		t.mInflight.Add(-1)
	}, nil
}

// AdmissionStats is the admission-control snapshot served by /tenants.
type AdmissionStats struct {
	Slots    int   `json:"slots"`
	MaxQueue int   `json:"max_queue"`
	Pending  int64 `json:"pending"`
	Rejected int64 `json:"rejected"`
	Admitted int64 `json:"admitted"`
}

func (t *Tenant) admissionStats() AdmissionStats {
	return AdmissionStats{
		Slots:    t.slots,
		MaxQueue: t.maxQueue,
		Pending:  t.pending.Load(),
		Rejected: t.mRejected.Value(),
		Admitted: t.mRequests.Value(),
	}
}

// CatalogSnapshot is the /debug/catalog payload: the tenant's index
// catalog counters and budget next to its prepared-statement cache — the
// two caches an operator tunes against each other.
type CatalogSnapshot struct {
	Tenant   string         `json:"tenant"`
	Catalog  catalog.Stats  `json:"catalog"`
	Prepared PrepCacheStats `json:"prepared"`
}

func (t *Tenant) serveCatalogSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(CatalogSnapshot{Tenant: t.name, Catalog: t.db.Catalog().Stats(), Prepared: t.prep.stats()})
}

// Database exposes the tenant's database (tests and embedders load data
// through it; the HTTP surface never mutates it).
func (t *Tenant) Database() *xmjoin.Database { return t.db }

// Metrics exposes the tenant's registry.
func (t *Tenant) Metrics() *obs.Registry { return t.reg }
