package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	xmjoin "repro"
	"repro/internal/catalog"
	"repro/internal/mmql"
)

// Config tunes the server-wide defaults; per-tenant overrides go through
// TenantConfig.
type Config struct {
	// DefaultDeadline applies to requests that name none (0 = requests
	// without a deadline run unbounded).
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines (0 = no cap).
	MaxDeadline time.Duration
	// Parallelism is the per-query ExecOptions.Parallelism; 0 defaults
	// to -1 (GOMAXPROCS morsel workers), which is also what arms the
	// engine's deadline-aware morsel scheduling — deadline gating lives
	// in the parallel executor.
	Parallelism int
	// MaxConcurrent is each tenant's execution slots; 0 derives from
	// GOMAXPROCS / ResolveWorkers(Parallelism), at least 1.
	MaxConcurrent int
	// MaxQueue is each tenant's wait-queue depth beyond its slots before
	// requests are rejected with 429; 0 derives as 2×slots.
	MaxQueue int
	// PrepCacheSize is each tenant's prepared-statement LRU capacity;
	// 0 defaults to 64.
	PrepCacheSize int
}

func (c Config) withDefaults() Config {
	if c.Parallelism == 0 {
		c.Parallelism = -1
	}
	if c.PrepCacheSize == 0 {
		c.PrepCacheSize = 64
	}
	return c
}

// Server is the multi-tenant HTTP front end. Create with New, add
// tenants, then serve it — it is an http.Handler. Endpoints:
//
//	POST /query              materialized answers as one JSON document
//	POST /stream             chunked NDJSON row streaming
//	POST /explain            plan rendering, no execution
//	GET  /tenants            admin summary of every tenant
//	GET  /tenants/{name}/... per-tenant observability: /metrics,
//	                         /debug/pprof/..., /debug/vars,
//	                         /debug/slowlog, /debug/catalog
//	GET  /healthz            liveness probe
//
// Requests address a tenant with the X-Tenant header (or the "tenant"
// JSON field); with exactly one tenant registered it may be omitted. A
// deadline arrives via the X-Deadline-Ms header (or "deadline_ms" JSON
// field), is clamped to Config.MaxDeadline, and bounds the whole request
// — queueing for admission included — flowing into the engine, whose
// deadline-aware morsel scheduler stops dequeuing work it can no longer
// finish in time and returns the partial answer (response field
// "cancelled": true, engine counter Stats.DeadlineStops).
type Server struct {
	cfg     Config
	mu      sync.RWMutex
	tenants map[string]*Tenant
	order   []string
	mux     *http.ServeMux
}

// New returns an empty server with the given defaults.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults(), tenants: make(map[string]*Tenant)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /stream", s.handleStream)
	mux.HandleFunc("POST /explain", s.handleExplain)
	mux.HandleFunc("GET /tenants", s.handleTenants)
	mux.HandleFunc("GET /tenants/{tenant}/", s.handleTenantDebug)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	s.mux = mux
	return s
}

// AddTenant registers a tenant around db with the server defaults.
func (s *Server) AddTenant(name string, db *xmjoin.Database) (*Tenant, error) {
	return s.AddTenantConfig(name, db, TenantConfig{})
}

// AddTenantConfig is AddTenant with per-tenant overrides.
func (s *Server) AddTenantConfig(name string, db *xmjoin.Database, tc TenantConfig) (*Tenant, error) {
	if name == "" {
		return nil, errors.New("server: tenant name must be non-empty")
	}
	if strings.ContainsAny(name, "/ ") {
		return nil, fmt.Errorf("server: tenant name %q must not contain '/' or spaces", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tenants[name]; dup {
		return nil, fmt.Errorf("server: tenant %q already registered", name)
	}
	t := newTenant(name, db, s.cfg, tc)
	s.tenants[name] = t
	s.order = append(s.order, name)
	sort.Strings(s.order)
	return t, nil
}

// Tenant returns a registered tenant by name.
func (s *Server) Tenant(name string) (*Tenant, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[name]
	return t, ok
}

// ServeHTTP dispatches to the server's mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// queryRequest is the JSON request body of /query, /stream and /explain.
// A non-JSON body is taken verbatim as the query text, with tenant and
// deadline supplied by headers.
type queryRequest struct {
	Tenant     string `json:"tenant,omitempty"`
	Query      string `json:"query"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
}

// queryResponse is the JSON response of /query (and /explain, which only
// fills Tenant and Text).
type queryResponse struct {
	Tenant  string     `json:"tenant"`
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows"`
	// Text replaces the tabular answer for EXPLAIN / EXPLAIN ANALYZE.
	Text string `json:"text,omitempty"`
	// Cancelled marks a partial answer: the request deadline (or the
	// client going away) pre-empted the run; Rows holds the answers
	// found in time.
	Cancelled bool `json:"cancelled,omitempty"`
	// DeadlineStops surfaces the engine's deadline-aware scheduler: how
	// many morsels it refused to start because the remaining budget
	// could not cover them.
	DeadlineStops int `json:"deadline_stops,omitempty"`
	// Cache reports the prepared-statement cache outcome: "hit",
	// "miss", or "bypass" (EXPLAIN and VIA baseline are not cached).
	Cache     string        `json:"cache"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Stats     *xmjoin.Stats `json:"stats,omitempty"`
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorResponse{Error: msg, Code: code})
}

// readRequest decodes the body (JSON or raw text) and resolves the
// tenant: X-Tenant header first, then the JSON field, then the only
// registered tenant. It reports errors directly to w and returns ok =
// false after doing so.
func (s *Server) readRequest(w http.ResponseWriter, r *http.Request) (req queryRequest, t *Tenant, ok bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: "+err.Error())
		return req, nil, false
	}
	if ct := r.Header.Get("Content-Type"); strings.Contains(ct, "json") {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "decoding JSON body: "+err.Error())
			return req, nil, false
		}
	} else {
		req.Query = string(body)
	}
	if h := r.Header.Get("X-Tenant"); h != "" {
		req.Tenant = h
	}
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "bad_request", "X-Deadline-Ms must be a non-negative integer")
			return req, nil, false
		}
		req.DeadlineMS = ms
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "empty query")
		return req, nil, false
	}
	s.mu.RLock()
	switch {
	case req.Tenant != "":
		t = s.tenants[req.Tenant]
	case len(s.order) == 1:
		t = s.tenants[s.order[0]]
		req.Tenant = s.order[0]
	}
	s.mu.RUnlock()
	if t == nil {
		if req.Tenant == "" {
			writeError(w, http.StatusBadRequest, "bad_request", "no tenant specified (X-Tenant header or \"tenant\" field)")
		} else {
			writeError(w, http.StatusNotFound, "unknown_tenant", "unknown tenant "+strconv.Quote(req.Tenant))
		}
		return req, nil, false
	}
	return req, t, true
}

// requestContext derives the execution context: the request's own context
// (client disconnect cancels) bounded by the resolved deadline.
func (s *Server) requestContext(r *http.Request, req queryRequest) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		d = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if s.cfg.MaxDeadline > 0 && (d == 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

// execute runs one statement for a tenant through its prepared-statement
// cache (EXPLAIN and VIA baseline bypass it — they are not preparable).
func (t *Tenant) execute(ctx context.Context, text string) (out *mmql.Output, cache string, err error) {
	st, perr := mmql.Parse(text)
	if perr != nil {
		return nil, "", badRequestError{perr}
	}
	if st.Explain || st.Algo == "baseline" {
		out, err = mmql.RunCtx(ctx, t.db, st)
		return out, "bypass", err
	}
	p, hit, err := t.prep.get(text, func() (*mmql.Prepared, error) {
		return mmql.PrepareStatement(ctx, t.db, st)
	})
	cache = "miss"
	if hit {
		cache = "hit"
	}
	if err != nil {
		if errors.Is(err, xmjoin.ErrCancelled) {
			return nil, cache, err
		}
		return nil, cache, badRequestError{err}
	}
	out, err = p.ExecuteCtx(ctx, xmjoin.ExecOptions{Parallelism: t.parallelism})
	return out, cache, err
}

// badRequestError marks failures of the request itself (parse errors,
// unknown tables or attributes) as distinct from engine failures.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

// handleQuery is POST /query: admission, deadline, cached prepared
// execution, one JSON document out. A deadline-pre-empted run answers
// 200 with the partial rows and "cancelled": true — partial answers are
// the feature, not an error.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, t, ok := s.readRequest(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r, req)
	defer cancel()
	release, err := t.admit(ctx)
	if err != nil {
		s.writeAdmissionError(w, req, err)
		return
	}
	defer release()
	start := time.Now()
	out, cacheState, err := t.execute(ctx, req.Query)
	resp := queryResponse{Tenant: req.Tenant, Cache: cacheState, Rows: [][]string{}}
	if out != nil {
		resp.Columns = out.Attrs
		if out.Rows != nil {
			resp.Rows = out.Rows
		}
		resp.Text = out.Text
		resp.Stats = out.Stats
		if out.Stats != nil {
			resp.DeadlineStops = out.Stats.DeadlineStops
		}
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	switch {
	case err == nil:
	case errors.Is(err, xmjoin.ErrCancelled):
		resp.Cancelled = true
		t.mDeadline.Inc()
	default:
		t.mErrors.Inc()
		var bad badRequestError
		if errors.As(err, &bad) {
			writeError(w, http.StatusBadRequest, "query_error", err.Error())
		} else {
			writeError(w, http.StatusInternalServerError, "internal", err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeAdmissionError maps an admit failure: queue overflow → 429 with
// Retry-After; a deadline that expired while queued → the same honest
// "cancelled, empty partial answer" shape a mid-run expiry produces.
func (s *Server) writeAdmissionError(w http.ResponseWriter, req queryRequest, err error) {
	if errors.Is(err, ErrOverloaded) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overloaded", err.Error())
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		if t, ok := s.Tenant(req.Tenant); ok {
			t.mDeadline.Inc()
		}
		writeJSON(w, http.StatusOK, queryResponse{Tenant: req.Tenant, Rows: [][]string{}, Cancelled: true, Cache: "none"})
		return
	}
	// The client went away while queued; the status is never seen.
	writeError(w, http.StatusBadRequest, "cancelled", err.Error())
}

// streamChunk is one NDJSON line of /stream: first a header with the
// columns, then one line per row batch, then a trailer with the run's
// outcome.
type streamChunk struct {
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Done    bool       `json:"done,omitempty"`
	// Trailer fields, set only with Done.
	RowCount      int           `json:"row_count,omitempty"`
	Cancelled     bool          `json:"cancelled,omitempty"`
	DeadlineStops int           `json:"deadline_stops,omitempty"`
	Cache         string        `json:"cache,omitempty"`
	ElapsedMS     float64       `json:"elapsed_ms,omitempty"`
	Stats         *xmjoin.Stats `json:"stats,omitempty"`
	Error         string        `json:"error,omitempty"`
}

// handleStream is POST /stream: answers leave as NDJSON chunks while the
// join still runs, backed by the pull cursor's NextBatch. Streaming
// bypasses the materialized path's dedup/sort — rows arrive in engine
// order and a projected SELECT may repeat rows (documented contract).
// Statements that need the whole result (aggregates, GROUP BY, EXISTS,
// EXPLAIN) fall back to materialized execution and stream the finished
// rows in chunks.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	req, t, ok := s.readRequest(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r, req)
	defer cancel()
	release, err := t.admit(ctx)
	if err != nil {
		s.writeAdmissionError(w, req, err)
		return
	}
	defer release()
	start := time.Now()

	st, perr := mmql.Parse(req.Query)
	if perr != nil {
		writeError(w, http.StatusBadRequest, "query_error", perr.Error())
		return
	}
	streamable := !st.Explain && st.Algo != "baseline" && !st.Exists && !st.HasAggregates() && len(st.GroupBy) == 0
	if !streamable {
		s.streamMaterialized(w, t, ctx, req, start)
		return
	}

	p, hit, err := t.prep.get(req.Query, func() (*mmql.Prepared, error) {
		return mmql.PrepareStatement(ctx, t.db, st)
	})
	cacheState := "miss"
	if hit {
		cacheState = "hit"
	}
	if err != nil {
		t.mErrors.Inc()
		writeError(w, http.StatusBadRequest, "query_error", err.Error())
		return
	}
	rows, err := p.Rows(ctx, xmjoin.ExecOptions{Parallelism: t.parallelism})
	if err != nil {
		t.mErrors.Inc()
		writeError(w, http.StatusBadRequest, "query_error", err.Error())
		return
	}
	defer rows.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	_ = enc.Encode(streamChunk{Columns: rows.Columns()})
	if flusher != nil {
		flusher.Flush()
	}
	n := 0
	for batch := rows.NextBatch(); batch != nil; batch = rows.NextBatch() {
		n += len(batch)
		if err := enc.Encode(streamChunk{Rows: batch}); err != nil {
			return // client went away; Close stops the join
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	trailer := streamChunk{Done: true, RowCount: n, Cache: cacheState,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond)}
	if serr := rows.Err(); serr != nil {
		if errors.Is(serr, xmjoin.ErrCancelled) {
			trailer.Cancelled = true
			t.mDeadline.Inc()
		} else {
			trailer.Error = serr.Error()
			t.mErrors.Inc()
		}
	}
	if stats, ok := rows.Stats(); ok {
		trailer.Stats = &stats
		trailer.DeadlineStops = stats.DeadlineStops
		if stats.Cancelled {
			trailer.Cancelled = true
		}
	}
	_ = enc.Encode(trailer)
}

// streamMaterialized answers /stream for non-streamable statements:
// execute materialized, then chunk the finished rows out in the same
// NDJSON shape.
func (s *Server) streamMaterialized(w http.ResponseWriter, t *Tenant, ctx context.Context, req queryRequest, start time.Time) {
	out, cacheState, err := t.execute(ctx, req.Query)
	cancelled := false
	switch {
	case err == nil:
	case errors.Is(err, xmjoin.ErrCancelled):
		cancelled = true
		t.mDeadline.Inc()
	default:
		t.mErrors.Inc()
		var bad badRequestError
		if errors.As(err, &bad) {
			writeError(w, http.StatusBadRequest, "query_error", err.Error())
		} else {
			writeError(w, http.StatusInternalServerError, "internal", err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	var cols []string
	var rows [][]string
	var stats *xmjoin.Stats
	if out != nil {
		cols, rows, stats = out.Attrs, out.Rows, out.Stats
	}
	_ = enc.Encode(streamChunk{Columns: cols})
	for off := 0; off < len(rows); off += 64 {
		end := off + 64
		if end > len(rows) {
			end = len(rows)
		}
		_ = enc.Encode(streamChunk{Rows: rows[off:end]})
	}
	trailer := streamChunk{Done: true, RowCount: len(rows), Cache: cacheState, Cancelled: cancelled,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond), Stats: stats}
	if stats != nil {
		trailer.DeadlineStops = stats.DeadlineStops
	}
	_ = enc.Encode(trailer)
}

// handleExplain is POST /explain: render the plan, execute nothing.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, t, ok := s.readRequest(w, r)
	if !ok {
		return
	}
	st, perr := mmql.Parse(req.Query)
	if perr != nil {
		writeError(w, http.StatusBadRequest, "query_error", perr.Error())
		return
	}
	text, err := mmql.Explain(t.db, st)
	if err != nil {
		writeError(w, http.StatusBadRequest, "query_error", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{Tenant: req.Tenant, Text: text, Rows: [][]string{}, Cache: "bypass"})
}

// TenantSummary is one /tenants entry.
type TenantSummary struct {
	Name        string         `json:"name"`
	Tables      []string       `json:"tables"`
	Docs        []string       `json:"docs"`
	Catalog     catalog.Stats  `json:"catalog"`
	Prepared    PrepCacheStats `json:"prepared"`
	Admission   AdmissionStats `json:"admission"`
	SlowQueries int64          `json:"slow_queries"`
}

// handleTenants is GET /tenants: the admin summary.
func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	names := append([]string(nil), s.order...)
	s.mu.RUnlock()
	out := make([]TenantSummary, 0, len(names))
	for _, name := range names {
		t, ok := s.Tenant(name)
		if !ok {
			continue
		}
		docs := t.db.DocNames()
		if t.db.Doc() != nil {
			docs = append([]string{"(default)"}, docs...)
		}
		out = append(out, TenantSummary{
			Name:        name,
			Tables:      t.db.TableNames(),
			Docs:        docs,
			Catalog:     t.db.Catalog().Stats(),
			Prepared:    t.prep.stats(),
			Admission:   t.admissionStats(),
			SlowQueries: t.db.SlowLog().Total(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTenantDebug serves GET /tenants/{name}/... — the tenant's
// observability surface (obs.Handler plus the slowlog and catalog
// mounts), with the /tenants/{name} prefix stripped.
func (s *Server) handleTenantDebug(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t, ok := s.Tenant(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_tenant", "unknown tenant "+strconv.Quote(name))
		return
	}
	http.StripPrefix("/tenants/"+name, t.debug).ServeHTTP(w, r)
}
