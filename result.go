package xmjoin

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/xmldb"
)

// Result is a materialized query answer with string-decoded access.
type Result struct {
	db *Database
	r  *core.Result
}

// Attrs names the tuple positions.
func (r *Result) Attrs() []string { return r.r.Attrs }

// Len reports the number of answer tuples.
func (r *Result) Len() int { return len(r.r.Tuples) }

// Row decodes the i-th tuple to strings (structural XML nodes render as
// "<node#N>").
func (r *Result) Row(i int) []string {
	t := r.r.Tuples[i]
	out := make([]string, len(t))
	for j, v := range t {
		out[j] = xmldb.DisplayValue(r.db.dict, v)
	}
	return out
}

// Stats describes the run that produced this result.
func (r *Result) Stats() core.Stats { return r.r.Stats }

// Project reorders and deduplicates the result onto the given attributes.
func (r *Result) Project(attrs ...string) (*Result, error) {
	pr, err := r.r.Project(attrs)
	if err != nil {
		return nil, err
	}
	return &Result{db: r.db, r: pr}, nil
}

// Filter returns a new result holding the rows whose decoded string form
// satisfies keep. Statistics are inherited from the unfiltered run.
func (r *Result) Filter(keep func(row []string) bool) *Result {
	out := &Result{db: r.db, r: &core.Result{Attrs: r.r.Attrs, Stats: r.r.Stats}}
	for i := range r.r.Tuples {
		if keep(r.Row(i)) {
			out.r.Tuples = append(out.r.Tuples, r.r.Tuples[i])
		}
	}
	return out
}

// Sort orders the tuples lexicographically by their decoded string values,
// making output deterministic and human-stable.
func (r *Result) Sort() *Result {
	sort.SliceStable(r.r.Tuples, func(i, j int) bool {
		a, b := r.Row(i), r.Row(j)
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return r
}

// Equal reports whether two results hold the same tuple set (attribute
// order insensitive).
func (r *Result) Equal(o *Result) bool { return core.EqualResults(r.r, o.r) }

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var sb strings.Builder
	widths := make([]int, len(r.Attrs()))
	for i, a := range r.Attrs() {
		widths[i] = len(a)
	}
	rows := make([][]string, r.Len())
	for i := range rows {
		rows[i] = r.Row(i)
		for j, c := range rows[i] {
			if len(c) > widths[j] {
				widths[j] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for j, c := range cells {
			if j > 0 {
				sb.WriteString("  ")
			}
			if j == len(cells)-1 {
				sb.WriteString(c) // no trailing padding
			} else {
				fmt.Fprintf(&sb, "%-*s", widths[j], c)
			}
		}
		sb.WriteString("\n")
	}
	writeRow(r.Attrs())
	for _, row := range rows {
		writeRow(row)
	}
	fmt.Fprintf(&sb, "(%d rows)\n", r.Len())
	return sb.String()
}

// Bounds exposes the query's worst-case size bounds.
type Bounds struct {
	b *core.Bounds
}

// Exponent is the exact AGM exponent ρ* of the full multi-model query:
// with all relations of size at most N, |Q| <= N^ρ*.
func (b *Bounds) Exponent() *big.Rat { return b.b.Exponent }

// TwigExponent is ρ* of the XML-only subquery Q2 (nil without a twig).
func (b *Bounds) TwigExponent() *big.Rat { return b.b.TwigExponent }

// RelationalExponent is ρ* of the relational-only subquery Q1 (nil without
// tables).
func (b *Bounds) RelationalExponent() *big.Rat { return b.b.RelationalExponent }

// Weighted instantiates the bound with the actual relation cardinalities.
func (b *Bounds) Weighted() float64 { return b.b.WeightedBound }

// Hypergraph renders the transformed hypergraph (Figure 2's output).
func (b *Bounds) Hypergraph() string { return b.b.Paper.String() }

// String summarizes the bounds.
func (b *Bounds) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "AGM exponent rho* = %s", b.b.Exponent.RatString())
	if b.b.RelationalExponent != nil {
		fmt.Fprintf(&sb, "; relational-only (Q1) = %s", b.b.RelationalExponent.RatString())
	}
	if b.b.TwigExponent != nil {
		fmt.Fprintf(&sb, "; twig-only (Q2) = %s", b.b.TwigExponent.RatString())
	}
	fmt.Fprintf(&sb, "; weighted bound = %.6g", b.b.WeightedBound)
	return sb.String()
}
