package xmjoin

import (
	"strings"
	"testing"
)

const ordersDocXML = `
<orders>
  <order><orderID>1</orderID><item>book</item></order>
  <order><orderID>2</orderID><item>pen</item></order>
  <order><orderID>3</orderID><item>ink</item></order>
</orders>`

const shipmentsDocXML = `
<shipments>
  <shipment><orderID>1</orderID><carrier>dhl</carrier></shipment>
  <shipment><orderID>3</orderID><carrier>ups</carrier></shipment>
</shipments>`

func multiDocDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	if err := db.LoadXMLNamedString("orders", ordersDocXML); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadXMLNamedString("shipments", shipmentsDocXML); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestCrossDocumentJoin joins twigs over two separate XML documents — the
// paper's multiple-XML-DB setting — on the shared orderID values.
func TestCrossDocumentJoin(t *testing.T) {
	db := multiDocDB(t)
	if got := db.DocNames(); len(got) != 2 || got[0] != "orders" || got[1] != "shipments" {
		t.Fatalf("DocNames = %v", got)
	}
	q, err := db.QueryOn([]TwigOn{
		{Doc: "orders", Twig: "//order[orderID]/item"},
		{Doc: "shipments", Twig: "//shipment[orderID]/carrier"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.ExecXJoin()
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Project("orderID", "item", "carrier")
	if err != nil {
		t.Fatal(err)
	}
	out.Sort()
	if out.Len() != 2 {
		t.Fatalf("cross-doc join = %d rows want 2", out.Len())
	}
	if got := strings.Join(out.Row(0), "|"); got != "1|book|dhl" {
		t.Errorf("row 0 = %s", got)
	}
	if got := strings.Join(out.Row(1), "|"); got != "3|ink|ups" {
		t.Errorf("row 1 = %s", got)
	}

	base, err := q.ExecBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(base) {
		t.Fatalf("cross-doc: XJoin %d vs baseline %d", res.Len(), base.Len())
	}

	// Bounds and Explain work across documents (atoms carry doc prefixes).
	plan, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "D1.") || !strings.Contains(plan, "D2.") {
		t.Errorf("plan lacks per-document atom prefixes:\n%s", plan)
	}
	if _, err := q.Bounds(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossDocumentWithTableAndDefault mixes the default document, a named
// document, and a relational table in one query.
func TestCrossDocumentWithTableAndDefault(t *testing.T) {
	db := multiDocDB(t)
	if err := db.LoadXMLString(`<ratings><entry><carrier>dhl</carrier><stars>5</stars></entry></ratings>`); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTableRows("users", []string{"orderID", "user"}, [][]string{
		{"1", "jack"}, {"3", "tom"},
	}); err != nil {
		t.Fatal(err)
	}
	q, err := db.QueryOn([]TwigOn{
		{Doc: "orders", Twig: "//order[orderID]/item"},
		{Doc: "shipments", Twig: "//shipment[orderID]/carrier"},
		{Twig: "//entry[carrier]/stars"}, // default document
	}, "users")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.ExecXJoin()
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Project("user", "item", "carrier", "stars")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || strings.Join(out.Row(0), "|") != "jack|book|dhl|5" {
		t.Fatalf("mixed query rows = %v", rowsOf(out))
	}
	base, err := q.ExecBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(base) {
		t.Fatal("mixed query: algorithms disagree")
	}
}

func TestQueryOnErrors(t *testing.T) {
	db := multiDocDB(t)
	if _, err := db.QueryOn([]TwigOn{{Doc: "nope", Twig: "//a"}}); err == nil {
		t.Error("unknown document accepted")
	}
	if _, err := db.QueryOn([]TwigOn{{Twig: "//a"}}); err == nil {
		t.Error("default-doc twig accepted without a default document")
	}
	if _, err := db.QueryOn([]TwigOn{{Doc: "orders", Twig: "///"}}); err == nil {
		t.Error("bad twig accepted")
	}
	if err := db.LoadXMLNamedString("", "<a/>"); err == nil {
		t.Error("empty document name accepted")
	}
	if err := db.LoadXMLNamedString("x", "<a><b></a>"); err == nil {
		t.Error("malformed named document accepted")
	}
}

func TestMultiDocPersistence(t *testing.T) {
	dir := t.TempDir()
	db := multiDocDB(t)
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.DocNames(); len(got) != 2 {
		t.Fatalf("reloaded doc names = %v", got)
	}
	q, err := db2.QueryOn([]TwigOn{
		{Doc: "orders", Twig: "//order[orderID]/item"},
		{Doc: "shipments", Twig: "//shipment[orderID]/carrier"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.ExecXJoin()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("reloaded cross-doc join = %d rows", res.Len())
	}
}

func rowsOf(r *Result) [][]string {
	out := make([][]string, r.Len())
	for i := range out {
		out[i] = r.Row(i)
	}
	return out
}
