package xmjoin_test

import (
	"fmt"
	"log"

	xmjoin "repro"
)

// Example reproduces the paper's Figure 1: joining an invoices document
// with a relational orders table.
func Example() {
	db := xmjoin.NewDatabase()
	err := db.LoadXMLString(`
<invoices>
  <orderLine><orderID>10963</orderID><ISBN>978-3-16-1</ISBN><price>30</price></orderLine>
  <orderLine><orderID>20134</orderID><ISBN>634-3-12-2</ISBN><price>20</price></orderLine>
</invoices>`)
	if err != nil {
		log.Fatal(err)
	}
	err = db.AddTableRows("R", []string{"orderID", "userID"}, [][]string{
		{"10963", "jack"}, {"20134", "tom"}, {"35768", "bob"},
	})
	if err != nil {
		log.Fatal(err)
	}

	q, err := db.Query("/invoices/orderLine[orderID][ISBN]/price", "R")
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.ExecXJoin()
	if err != nil {
		log.Fatal(err)
	}
	out, err := res.Project("userID", "ISBN", "price")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out.Sort())
	// Output:
	// userID  ISBN        price
	// jack    978-3-16-1  30
	// tom     634-3-12-2  20
	// (2 rows)
}

// ExampleQuery_Bounds derives the exact worst-case size bounds of
// Example 3.3: the running twig with R1(B,D) and R2(F,G,H).
func ExampleQuery_Bounds() {
	db := xmjoin.NewDatabase()
	// A minimal document with the running twig's shape.
	err := db.LoadXMLString(`
<A>a0<B>b0</B><D>d0</D>
  <C>c0<E>e0</E><F>f0<H>h0</H><G>g0</G></F></C>
</A>`)
	if err != nil {
		log.Fatal(err)
	}
	_ = db.AddTableRows("R1", []string{"B", "D"}, [][]string{{"b0", "d0"}})
	_ = db.AddTableRows("R2", []string{"F", "G", "H"}, [][]string{{"f0", "g0", "h0"}})

	q, err := db.Query("//A[B][D][.//C[E][.//F[H][.//G]]]", "R1", "R2")
	if err != nil {
		log.Fatal(err)
	}
	b, err := q.Bounds()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("twig-only exponent:", b.TwigExponent().RatString())
	fmt.Println("full-query exponent:", b.Exponent().RatString())
	// Output:
	// twig-only exponent: 5
	// full-query exponent: 7/2
}

// ExampleQuery_ExecXJoinStream consumes answers without materializing the
// result set.
func ExampleQuery_ExecXJoinStream() {
	db := xmjoin.NewDatabase()
	if err := db.LoadXMLString(`<r><x>1</x><x>2</x><x>3</x></r>`); err != nil {
		log.Fatal(err)
	}
	q, err := db.Query("//x")
	if err != nil {
		log.Fatal(err)
	}
	stats, err := q.ExecXJoinStream(func(row []string) bool {
		fmt.Println(row[0])
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("answers:", stats.Output)
	// Output:
	// 1
	// 2
	// 3
	// answers: 3
}
